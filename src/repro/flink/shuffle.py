"""Data exchange between operators: forward, hash shuffle, broadcast, gather.

An :class:`Exchange` moves the materialized output partitions of a producer
operator to the consumer's subtasks according to a
:class:`~repro.flink.plan.ShipStrategy`.  Producer-side work (pre-combine,
serialization) runs as processes on the producer's workers; wire time goes
through the shared :class:`~repro.common.network.Network`; consumers pay
deserialization.  Functional element routing (hash bucketing, combining) is
computed for real so downstream results are correct.

Two wire formats exist (docs/STREAMING_EXECUTOR.md §columnar):

* **Row path** — the classic per-record model: serialize on the sender,
  deserialize on the receiver, both at ``serde_bps`` plus a per-record
  overhead.  Always used for list payloads, ``COUNT_COMBINER`` counts and
  free-form combiners.
* **Columnar path** — payloads that are NumPy/GStruct blocks with a
  vectorized integer key extractor ship as raw SoA byte regions,
  partitioned into pipeline-sized blocks.  No per-row serde is charged;
  each framed block pays only a fixed descriptor cost on each side.  A
  destination payload above ``FlinkConfig.shuffle_spill_nbytes`` is spilled
  through the simulated HDFS (disk + replication) instead of held in
  exchange buffers.

``only_consumers`` (lineage recovery) restricts both paths identically:
non-recovering consumer indexes get no shipping, no spill and a ``None``
input slot.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, List, Optional, Set, Tuple

import numpy as np

from repro.common.network import Network
from repro.common.simclock import Environment, Event
from repro.flink.columnar import (columnar_compatible, columnar_concat,
                                  is_columnar, n_wire_blocks, soa_regions,
                                  vector_keys)
from repro.flink.config import FlinkConfig
from repro.flink.iterators import apply_grouped_reduce, is_vectorized
from repro.flink.partition import Partition, real_len
from repro.flink.plan import ShipStrategy
from repro.flink.serialization import Serializer


#: Sentinel combiner: replace each bucket by its (nominal) element count.
#: Lets ``count()`` ship 8 bytes per producer instead of the whole dataset.
COUNT_COMBINER = object()

_DEFAULT_FLINK = FlinkConfig()
_spill_ids = itertools.count()


def hash_bucket(key: Any, n: int) -> int:
    """Deterministic bucket for ``key`` among ``n`` consumers.

    Python's builtin ``hash`` is salted per process for str/bytes; use a
    stable hash so runs are reproducible.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) % n
    h = 2166136261  # FNV-1a over the repr; stable and cheap
    for ch in repr(key):
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return h % n


class ExchangeResult:
    """Inputs for every consumer subtask plus traffic accounting."""

    def __init__(self, inputs: List[Partition], bytes_shuffled: float,
                 bytes_zero_copy: float = 0.0, bytes_spilled: float = 0.0):
        self.inputs = inputs
        self.bytes_shuffled = bytes_shuffled
        self.bytes_zero_copy = bytes_zero_copy
        self.bytes_spilled = bytes_spilled


class Exchange:
    """One producer→consumer edge of the execution graph."""

    def __init__(self, env: Environment, network: Network,
                 serializer: Serializer, strategy: ShipStrategy,
                 producers: List[Partition], n_consumers: int,
                 consumer_workers: List[str],
                 key_fn: Optional[Callable] = None,
                 combiner: Optional[Tuple[Callable, Callable]] = None,
                 only_consumers: Optional[Set[int]] = None,
                 hdfs=None, flink: Optional[FlinkConfig] = None):
        self.env = env
        self.network = network
        self.serializer = serializer
        self.strategy = strategy
        self.producers = producers
        self.n_consumers = n_consumers
        self.consumer_workers = consumer_workers
        self.key_fn = key_fn
        self.combiner = combiner
        # Lineage recovery re-executes only the *lost* consumer subtasks;
        # restricting the exchange to them skips shipping (and payloads) for
        # every other consumer index, whose input slot comes back as None.
        self.only_consumers = only_consumers
        # Spill target for oversized destination payloads (None: never spill).
        self.hdfs = hdfs
        self.flink = flink if flink is not None else _DEFAULT_FLINK
        self.bytes_shuffled = 0.0
        self.bytes_zero_copy = 0.0
        self.bytes_spilled = 0.0

    def _want(self, j: int) -> bool:
        return self.only_consumers is None or j in self.only_consumers

    # -- entry point -------------------------------------------------------------
    def run(self) -> Generator[Event, None, ExchangeResult]:
        """Simulation process performing the whole exchange."""
        if self.strategy is ShipStrategy.FORWARD:
            inputs = yield from self._run_forward()
        elif self.strategy in (ShipStrategy.UNION_LEFT,
                               ShipStrategy.UNION_RIGHT):
            inputs = yield from self._run_union()
        elif self.strategy is ShipStrategy.HASH:
            inputs = yield from self._run_routed(self._hash_route)
        elif self.strategy is ShipStrategy.REBALANCE:
            inputs = yield from self._run_routed(self._rebalance_route)
        elif self.strategy is ShipStrategy.GATHER:
            inputs = yield from self._run_routed(self._gather_route)
        elif self.strategy is ShipStrategy.BROADCAST:
            inputs = yield from self._run_broadcast()
        else:  # pragma: no cover - exhaustive over the enum
            raise NotImplementedError(self.strategy)
        return ExchangeResult(inputs, self.bytes_shuffled,
                              self.bytes_zero_copy, self.bytes_spilled)

    # -- forward ---------------------------------------------------------------
    def _run_forward(self) -> Generator[Event, None, List[Partition]]:
        if len(self.producers) != self.n_consumers:
            raise ValueError(
                f"FORWARD needs equal parallelism: {len(self.producers)} "
                f"producers vs {self.n_consumers} consumers")
        moves = []
        for j, part in enumerate(self.producers):
            if not self._want(j):
                continue
            dst = self.consumer_workers[j]
            if part.worker != dst:
                moves.append(self.env.process(
                    self._ship(part.worker, dst, part.nominal_nbytes,
                               part.nominal_count),
                    name=f"forward-{j}"))
        if moves:
            yield self.env.all_of(moves)
        inputs: List[Optional[Partition]] = []
        for j, part in enumerate(self.producers):
            if not self._want(j):
                inputs.append(None)
                continue
            dst = self.consumer_workers[j]
            moved = part.derive(part.elements)
            moved.index = j
            moved.worker = dst
            inputs.append(moved)
        return inputs

    # -- union ------------------------------------------------------------------
    def _run_union(self) -> Generator[Event, None, List[Partition]]:
        """Union sides: partition *i* feeds subtask ``offset + i``; every
        other subtask receives ``None`` for this input (a union subtask
        reads exactly one side)."""
        q = self.n_consumers
        offset = (0 if self.strategy is ShipStrategy.UNION_LEFT
                  else q - len(self.producers))
        inputs: List[Optional[Partition]] = [None] * q
        moves = []
        for i, part in enumerate(self.producers):
            if not self._want(offset + i):
                continue
            dst = self.consumer_workers[offset + i]
            if part.worker != dst:
                moves.append(self.env.process(
                    self._ship(part.worker, dst, part.nominal_nbytes,
                               part.nominal_count), name=f"union-{i}"))
        if moves:
            yield self.env.all_of(moves)
        for i, part in enumerate(self.producers):
            if not self._want(offset + i):
                continue
            moved = part.derive(part.elements)
            moved.index = offset + i
            moved.worker = self.consumer_workers[offset + i]
            inputs[offset + i] = moved
        return inputs

    # -- columnar eligibility -----------------------------------------------------
    def _columnar_payloads(self) -> bool:
        """Every producer payload is a NumPy block (or trivially empty)."""
        return (bool(self.producers)
                and all(columnar_compatible(p.elements)
                        for p in self.producers)
                and any(is_columnar(p.elements) for p in self.producers))

    def _columnar_routed(self) -> bool:
        """True when a routed exchange can take the zero-copy block path.

        Requires columnar payloads, a block-compatible combiner (none, or a
        vectorized ``(key_fn, reduce_fn)`` pair) and — for HASH — a
        vectorized key extractor yielding integer keys on every producer.
        ``COUNT_COMBINER`` and free-form combiners stay on the row path.
        """
        if not self.flink.columnar_shuffle or not self._columnar_payloads():
            return False
        if self.combiner is COUNT_COMBINER or callable(self.combiner):
            return False
        if self.combiner is not None:
            key_fn, reduce_fn = self.combiner
            if not (is_vectorized(key_fn) and is_vectorized(reduce_fn)):
                return False
        if self.strategy is ShipStrategy.HASH:
            if self.key_fn is None or not is_vectorized(self.key_fn):
                return False
            for part in self.producers:
                if (is_columnar(part.elements)
                        and vector_keys(self.key_fn, part.elements) is None):
                    return False
        return True

    # -- routed strategies (hash / rebalance / gather) ----------------------------
    def _hash_route(self, part: Partition) -> List[Any]:
        buckets: List[List[Any]] = [[] for _ in range(self.n_consumers)]
        for x in part.elements:
            buckets[hash_bucket(self.key_fn(x), self.n_consumers)].append(x)
        return buckets

    def _rebalance_route(self, part: Partition) -> List[Any]:
        buckets: List[List[Any]] = [[] for _ in range(self.n_consumers)]
        for i, x in enumerate(part.elements):
            buckets[i % self.n_consumers].append(x)
        return buckets

    def _gather_route(self, part: Partition) -> List[Any]:
        return [list(part.elements)]

    def _route_columnar(self, part: Partition) -> List[Any]:
        """Bucket a columnar payload without leaving NumPy.

        Bucket contents and order match the per-row routes exactly: masks
        preserve original order (hash), ``arr[j::q]`` is the round-robin
        residue class (rebalance), gather keeps the block whole.
        """
        arr = part.elements
        q = self.n_consumers
        if self.strategy is ShipStrategy.GATHER:
            return [arr]
        if not is_columnar(arr):  # empty list payload
            return [[] for _ in range(q)]
        if self.strategy is ShipStrategy.HASH:
            keys = vector_keys(self.key_fn, arr)
            bucket_ids = keys % q  # ints: identical to hash_bucket()
            return [arr[bucket_ids == j] for j in range(q)]
        return [arr[j::q] for j in range(q)]

    def _run_routed(self, route: Callable[[Partition], List[Any]]
                    ) -> Generator[Event, None, List[Partition]]:
        q = self.n_consumers
        columnar = self._columnar_routed()
        # bucket_payloads[j] collects (elements, count, nbytes) per producer.
        bucket_payloads: List[List[Tuple[Any, float, float]]] = [
            [] for _ in range(q)]
        senders = []
        for part in self.producers:
            buckets = self._route_columnar(part) if columnar else route(part)
            if self.combiner is COUNT_COMBINER:
                buckets = [[real_len(b) * part.scale] for b in buckets]
                counts = [1.0 for _ in buckets]
                element_nbytes = 8.0  # partial counts travel as one long each
            elif self.combiner is not None:
                buckets = [self._combine(b) for b in buckets]
                # Combined buckets are still samples: each real group stands
                # for `scale` nominal groups, so shipped counts keep the
                # producer's scale (previously dropped, under-charging wire
                # and serde time for sampled datasets).
                counts = [real_len(b) * part.scale for b in buckets]
                element_nbytes = part.element_nbytes
            else:
                counts = [real_len(b) * part.scale for b in buckets]
                element_nbytes = part.element_nbytes
            for j, (bucket, count) in enumerate(zip(buckets, counts)):
                bucket_payloads[j].append(
                    (bucket, count, count * element_nbytes))
            senders.append(self.env.process(
                self._send_buckets(part, buckets, counts, element_nbytes,
                                   columnar),
                name=f"shuffle-send-{part.index}"))
        if senders:
            yield self.env.all_of(senders)
        inputs: List[Optional[Partition]] = []
        for j in range(q):
            if not self._want(j):
                inputs.append(None)
                continue
            nominal = sum(count for _, count, _ in bucket_payloads[j])
            nominal_nbytes = sum(nb for _, _, nb in bucket_payloads[j])
            if columnar:
                merged = columnar_concat(
                    [bucket for bucket, _, _ in bucket_payloads[j]])
            else:
                merged = []
                for bucket, _, _ in bucket_payloads[j]:
                    merged.extend(bucket)
            n_real = real_len(merged)
            scale = nominal / n_real if n_real else 1.0
            inputs.append(Partition(
                index=j, elements=merged,
                element_nbytes=self._merged_element_nbytes(
                    nominal, nominal_nbytes),
                scale=scale, worker=self.consumer_workers[j]))
        return inputs

    def _merged_element_nbytes(self, nominal_count: float,
                               nominal_nbytes: float) -> float:
        """Count-weighted per-element size of a merged consumer partition.

        Producers may carry heterogeneous ``element_nbytes`` (e.g. after a
        union of differently-shaped sides); weighting by shipped counts
        conserves total nominal bytes instead of picking ``producers[0]``.
        """
        if nominal_count > 0:
            return nominal_nbytes / nominal_count
        if self.combiner is COUNT_COMBINER:
            return 8.0
        return self.producers[0].element_nbytes if self.producers else 8.0

    def _combine(self, bucket: Any) -> Any:
        if real_len(bucket) == 0:
            return bucket
        if callable(self.combiner):
            # Free-form producer-side combiner (e.g. first(n)'s truncation).
            return list(self.combiner(bucket))
        key_fn, reduce_fn = self.combiner
        return apply_grouped_reduce(bucket, key_fn, reduce_fn)

    def _send_buckets(self, part: Partition, buckets: List[Any],
                      counts: List[float], element_nbytes: float,
                      columnar: bool = False
                      ) -> Generator[Event, None, None]:
        # Pre-combine compute is charged by the caller via the combiner's
        # operator cost; here we charge shipping: serialize once, then wire
        # time per destination.
        for j, (bucket, count) in enumerate(zip(buckets, counts)):
            if count <= 0 or not self._want(j):
                continue
            nbytes = count * element_nbytes
            dst = self.consumer_workers[j]
            yield from self._ship_payload(
                part.worker, dst, nbytes, count,
                bucket, columnar, tag=f"{part.index}-{j}")

    # -- broadcast ----------------------------------------------------------------
    def _run_broadcast(self) -> Generator[Event, None, List[Partition]]:
        columnar = self.flink.columnar_shuffle and self._columnar_payloads()
        senders = []
        total_nbytes = sum(p.nominal_nbytes for p in self.producers)
        total_count = sum(p.nominal_count for p in self.producers)
        for part in self.producers:
            senders.append(self.env.process(
                self._broadcast_one(part, columnar),
                name=f"bcast-{part.index}"))
        if senders:
            yield self.env.all_of(senders)
        if columnar:
            merged = columnar_concat([p.elements for p in self.producers])
        else:
            merged = []
            for part in self.producers:
                merged.extend(list(part.elements))
        # Count-weighted per-element size: conserves total nominal bytes for
        # heterogeneous producers instead of assuming producers[0]'s shape.
        if total_count > 0:
            element_nbytes = total_nbytes / total_count
        else:
            element_nbytes = (self.producers[0].element_nbytes
                              if self.producers else 8.0)
        n_real = real_len(merged)
        scale = total_count / n_real if n_real else 1.0
        return [Partition(index=j,
                          elements=merged if columnar else list(merged),
                          element_nbytes=element_nbytes, scale=scale,
                          worker=self.consumer_workers[j])
                if self._want(j) else None
                for j in range(self.n_consumers)]

    def _broadcast_one(self, part: Partition,
                       columnar: bool = False
                       ) -> Generator[Event, None, None]:
        wanted = [(j, dst) for j, dst in enumerate(self.consumer_workers)
                  if self._want(j)]
        seen = set()
        for j, dst in wanted:
            if dst in seen:
                continue
            seen.add(dst)
            yield from self._ship_payload(
                part.worker, dst, part.nominal_nbytes, part.nominal_count,
                part.elements, columnar, tag=f"b{part.index}-{j}")

    # -- common ------------------------------------------------------------------
    def _ship(self, src: str, dst: str, nbytes: float,
              count: float) -> Generator[Event, None, None]:
        yield self.env.timeout(self.serializer.serialize_time(nbytes, count))
        yield from self.network.transfer(src, dst, int(nbytes))
        yield self.env.timeout(self.serializer.deserialize_time(nbytes, count))
        if src != dst:
            self.bytes_shuffled += nbytes

    def _ship_payload(self, src: str, dst: str, nbytes: float, count: float,
                      payload: Any, columnar: bool, tag: str
                      ) -> Generator[Event, None, None]:
        """Move one destination payload: zero-copy or row serde, spilling
        oversized payloads through HDFS instead of direct exchange buffers."""
        blocks = 0
        if columnar:
            regions = (soa_regions(payload) if is_columnar(payload)
                       else [int(nbytes)])
            blocks = n_wire_blocks(nbytes, self.flink.pipeline_block_nbytes,
                                   len(regions))
            # Sender frames block descriptors; bytes bypass serde entirely.
            yield self.env.timeout(
                self.serializer.zero_copy_time(nbytes, blocks))
        else:
            yield self.env.timeout(
                self.serializer.serialize_time(nbytes, count))
        if (self.hdfs is not None
                and nbytes > self.flink.shuffle_spill_nbytes):
            yield from self._spill(src, dst, nbytes, tag)
        else:
            yield from self.network.transfer(src, dst, int(nbytes))
        if columnar:
            # Receiver re-parses the block descriptors; no per-row deser.
            yield self.env.timeout(blocks * self.serializer.block_header_s)
        else:
            yield self.env.timeout(
                self.serializer.deserialize_time(nbytes, count))
        if src != dst:
            self.bytes_shuffled += nbytes
        if columnar:
            self.bytes_zero_copy += nbytes

    def _spill(self, src: str, dst: str, nbytes: float,
               tag: str) -> Generator[Event, None, None]:
        """Route one oversized payload through the simulated HDFS.

        The producer writes the region as a block (disk + replication),
        the consumer reads it back at its node (local replica if the
        namenode placed one there, else disk + network); the scratch file
        is deleted once consumed.
        """
        path = f"/.shuffle/spill-{next(_spill_ids)}-{tag}"
        self.hdfs.namenode.create_file(path)
        block = yield from self.hdfs.append_block(
            path, None, int(nbytes), writer_node=src)
        yield from self.hdfs.read_block(block, dst)
        self.bytes_spilled += nbytes
        self.hdfs.delete(path)
