"""Data exchange between operators: forward, hash shuffle, broadcast, gather.

An :class:`Exchange` moves the materialized output partitions of a producer
operator to the consumer's subtasks according to a
:class:`~repro.flink.plan.ShipStrategy`.  Producer-side work (pre-combine,
serialization) runs as processes on the producer's workers; wire time goes
through the shared :class:`~repro.common.network.Network`; consumers pay
deserialization.  Functional element routing (hash bucketing, combining) is
computed for real so downstream results are correct.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Set, Tuple

import numpy as np

from repro.common.network import Network
from repro.common.simclock import Environment, Event
from repro.flink.iterators import apply_reduce, group_elements
from repro.flink.partition import Partition, real_len
from repro.flink.plan import ShipStrategy
from repro.flink.serialization import Serializer


#: Sentinel combiner: replace each bucket by its (nominal) element count.
#: Lets ``count()`` ship 8 bytes per producer instead of the whole dataset.
COUNT_COMBINER = object()


def hash_bucket(key: Any, n: int) -> int:
    """Deterministic bucket for ``key`` among ``n`` consumers.

    Python's builtin ``hash`` is salted per process for str/bytes; use a
    stable hash so runs are reproducible.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) % n
    h = 2166136261  # FNV-1a over the repr; stable and cheap
    for ch in repr(key):
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return h % n


class ExchangeResult:
    """Inputs for every consumer subtask plus traffic accounting."""

    def __init__(self, inputs: List[Partition], bytes_shuffled: float):
        self.inputs = inputs
        self.bytes_shuffled = bytes_shuffled


class Exchange:
    """One producer→consumer edge of the execution graph."""

    def __init__(self, env: Environment, network: Network,
                 serializer: Serializer, strategy: ShipStrategy,
                 producers: List[Partition], n_consumers: int,
                 consumer_workers: List[str],
                 key_fn: Optional[Callable] = None,
                 combiner: Optional[Tuple[Callable, Callable]] = None,
                 only_consumers: Optional[Set[int]] = None):
        self.env = env
        self.network = network
        self.serializer = serializer
        self.strategy = strategy
        self.producers = producers
        self.n_consumers = n_consumers
        self.consumer_workers = consumer_workers
        self.key_fn = key_fn
        self.combiner = combiner
        # Lineage recovery re-executes only the *lost* consumer subtasks;
        # restricting the exchange to them skips shipping (and payloads) for
        # every other consumer index, whose input slot comes back as None.
        self.only_consumers = only_consumers
        self.bytes_shuffled = 0.0

    def _want(self, j: int) -> bool:
        return self.only_consumers is None or j in self.only_consumers

    # -- entry point -------------------------------------------------------------
    def run(self) -> Generator[Event, None, ExchangeResult]:
        """Simulation process performing the whole exchange."""
        if self.strategy is ShipStrategy.FORWARD:
            inputs = yield from self._run_forward()
        elif self.strategy in (ShipStrategy.UNION_LEFT,
                               ShipStrategy.UNION_RIGHT):
            inputs = yield from self._run_union()
        elif self.strategy is ShipStrategy.HASH:
            inputs = yield from self._run_routed(self._hash_route)
        elif self.strategy is ShipStrategy.REBALANCE:
            inputs = yield from self._run_routed(self._rebalance_route)
        elif self.strategy is ShipStrategy.GATHER:
            inputs = yield from self._run_routed(self._gather_route)
        elif self.strategy is ShipStrategy.BROADCAST:
            inputs = yield from self._run_broadcast()
        else:  # pragma: no cover - exhaustive over the enum
            raise NotImplementedError(self.strategy)
        return ExchangeResult(inputs, self.bytes_shuffled)

    # -- forward ---------------------------------------------------------------
    def _run_forward(self) -> Generator[Event, None, List[Partition]]:
        if len(self.producers) != self.n_consumers:
            raise ValueError(
                f"FORWARD needs equal parallelism: {len(self.producers)} "
                f"producers vs {self.n_consumers} consumers")
        moves = []
        for j, part in enumerate(self.producers):
            if not self._want(j):
                continue
            dst = self.consumer_workers[j]
            if part.worker != dst:
                moves.append(self.env.process(
                    self._ship(part.worker, dst, part.nominal_nbytes,
                               part.nominal_count),
                    name=f"forward-{j}"))
        if moves:
            yield self.env.all_of(moves)
        inputs: List[Optional[Partition]] = []
        for j, part in enumerate(self.producers):
            if not self._want(j):
                inputs.append(None)
                continue
            dst = self.consumer_workers[j]
            moved = part.derive(part.elements)
            moved.index = j
            moved.worker = dst
            inputs.append(moved)
        return inputs

    # -- union ------------------------------------------------------------------
    def _run_union(self) -> Generator[Event, None, List[Partition]]:
        """Union sides: partition *i* feeds subtask ``offset + i``; every
        other subtask receives ``None`` for this input (a union subtask
        reads exactly one side)."""
        q = self.n_consumers
        offset = (0 if self.strategy is ShipStrategy.UNION_LEFT
                  else q - len(self.producers))
        inputs: List[Optional[Partition]] = [None] * q
        moves = []
        for i, part in enumerate(self.producers):
            if not self._want(offset + i):
                continue
            dst = self.consumer_workers[offset + i]
            if part.worker != dst:
                moves.append(self.env.process(
                    self._ship(part.worker, dst, part.nominal_nbytes,
                               part.nominal_count), name=f"union-{i}"))
        if moves:
            yield self.env.all_of(moves)
        for i, part in enumerate(self.producers):
            if not self._want(offset + i):
                continue
            moved = part.derive(part.elements)
            moved.index = offset + i
            moved.worker = self.consumer_workers[offset + i]
            inputs[offset + i] = moved
        return inputs

    # -- routed strategies (hash / rebalance / gather) ----------------------------
    def _hash_route(self, part: Partition) -> List[Any]:
        buckets: List[List[Any]] = [[] for _ in range(self.n_consumers)]
        for x in part.elements:
            buckets[hash_bucket(self.key_fn(x), self.n_consumers)].append(x)
        return buckets

    def _rebalance_route(self, part: Partition) -> List[Any]:
        buckets: List[List[Any]] = [[] for _ in range(self.n_consumers)]
        for i, x in enumerate(part.elements):
            buckets[i % self.n_consumers].append(x)
        return buckets

    def _gather_route(self, part: Partition) -> List[Any]:
        return [list(part.elements)]

    def _run_routed(self, route: Callable[[Partition], List[Any]]
                    ) -> Generator[Event, None, List[Partition]]:
        q = self.n_consumers
        # bucket_payloads[j] collects (elements, nominal_count) per producer.
        bucket_payloads: List[List[Tuple[Any, float]]] = [[] for _ in range(q)]
        senders = []
        if self.combiner is COUNT_COMBINER:
            element_nbytes = 8.0  # partial counts travel as one long each
        else:
            element_nbytes = (self.producers[0].element_nbytes
                              if self.producers else 8.0)
        for part in self.producers:
            buckets = route(part)
            if self.combiner is COUNT_COMBINER:
                buckets = [[real_len(b) * part.scale] for b in buckets]
                counts = [1.0 for _ in buckets]
            elif self.combiner is not None:
                buckets = [self._combine(b) for b in buckets]
                counts = [float(real_len(b)) for b in buckets]
            else:
                counts = [real_len(b) * part.scale for b in buckets]
            for j, (bucket, count) in enumerate(zip(buckets, counts)):
                bucket_payloads[j].append((bucket, count))
            senders.append(self.env.process(
                self._send_buckets(part, buckets, counts, element_nbytes),
                name=f"shuffle-send-{part.index}"))
        if senders:
            yield self.env.all_of(senders)
        inputs: List[Optional[Partition]] = []
        for j in range(q):
            if not self._want(j):
                inputs.append(None)
                continue
            merged: List[Any] = []
            nominal = 0.0
            for bucket, count in bucket_payloads[j]:
                merged.extend(bucket)
                nominal += count
            scale = nominal / len(merged) if merged else 1.0
            inputs.append(Partition(index=j, elements=merged,
                                    element_nbytes=element_nbytes,
                                    scale=scale,
                                    worker=self.consumer_workers[j]))
        return inputs

    def _combine(self, bucket: List[Any]) -> List[Any]:
        if not bucket:
            return bucket
        if callable(self.combiner):
            # Free-form producer-side combiner (e.g. first(n)'s truncation).
            return list(self.combiner(bucket))
        key_fn, reduce_fn = self.combiner
        groups = group_elements(bucket, key_fn)
        return [apply_reduce(members, reduce_fn)
                for members in groups.values()]

    def _send_buckets(self, part: Partition, buckets: List[Any],
                      counts: List[float], element_nbytes: float
                      ) -> Generator[Event, None, None]:
        # Pre-combine compute is charged by the caller via the combiner's
        # operator cost; here we charge shipping: serialize once, then wire
        # time per destination.
        for j, (bucket, count) in enumerate(zip(buckets, counts)):
            if count <= 0 or not self._want(j):
                continue
            nbytes = count * element_nbytes
            dst = self.consumer_workers[j]
            yield self.env.timeout(
                self.serializer.serialize_time(nbytes, count))
            yield from self.network.transfer(part.worker, dst, int(nbytes))
            yield self.env.timeout(
                self.serializer.deserialize_time(nbytes, count))
            if part.worker != dst:
                self.bytes_shuffled += nbytes

    # -- broadcast ----------------------------------------------------------------
    def _run_broadcast(self) -> Generator[Event, None, List[Partition]]:
        senders = []
        total_nbytes = sum(p.nominal_nbytes for p in self.producers)
        total_count = sum(p.nominal_count for p in self.producers)
        for part in self.producers:
            senders.append(self.env.process(
                self._broadcast_one(part), name=f"bcast-{part.index}"))
        if senders:
            yield self.env.all_of(senders)
        merged: List[Any] = []
        for part in self.producers:
            merged.extend(list(part.elements))
        element_nbytes = (self.producers[0].element_nbytes
                          if self.producers else 8.0)
        scale = total_count / len(merged) if merged else 1.0
        return [Partition(index=j, elements=list(merged),
                          element_nbytes=element_nbytes, scale=scale,
                          worker=self.consumer_workers[j])
                if self._want(j) else None
                for j in range(self.n_consumers)]

    def _broadcast_one(self, part: Partition) -> Generator[Event, None, None]:
        wanted = [dst for j, dst in enumerate(self.consumer_workers)
                  if self._want(j)]
        for dst in dict.fromkeys(wanted):
            yield from self._ship(part.worker, dst, part.nominal_nbytes,
                                  part.nominal_count)

    # -- common ------------------------------------------------------------------
    def _ship(self, src: str, dst: str, nbytes: float,
              count: float) -> Generator[Event, None, None]:
        yield self.env.timeout(self.serializer.serialize_time(nbytes, count))
        yield from self.network.transfer(src, dst, int(nbytes))
        yield self.env.timeout(self.serializer.deserialize_time(nbytes, count))
        if src != dst:
            self.bytes_shuffled += nbytes
