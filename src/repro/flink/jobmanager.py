"""JobManager: compiles plans, schedules subtasks, supervises execution.

One JobManager runs on the master ("the coordinator of the GFlink system",
paper §3.3).  For each job it:

1. charges the job-submission overhead (Eq. 1's ``T_submit``),
2. compiles the logical plan into an :class:`~repro.flink.graph.ExecutionGraph`,
3. walks operators in dependency order, skipping any already materialized
   (persisted datasets from earlier jobs — the in-memory iteration path),
4. runs the data exchange for each input edge, then the operator's subtasks
   in task slots with per-task scheduling/deploy overhead and retry-on-failure,
5. extracts sink results and evicts non-persisted intermediates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, TYPE_CHECKING

from repro.common.errors import JobExecutionError
from repro.common.simclock import Environment, Event, InterruptError
from repro.flink.chaos import backoff_delay
from repro.flink.fault import FailureInjector, TaskFailure
from repro.flink.graph import ExecutionGraph, ExecutionJobVertex, \
    ExecutionVertex
from repro.flink.partition import Partition, split_evenly
from repro.flink.plan import (
    CollectionSource,
    CollectSink,
    CountSink,
    HdfsSink,
    HdfsSource,
    Operator,
)
from repro.flink.scheduler import Scheduler
from repro.flink.shuffle import Exchange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.runtime import Cluster


@dataclass
class OperatorSpan:
    """Wall-clock span of one operator's subtask wave."""

    name: str
    parallelism: int
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass
class JobMetrics:
    """Accounting for one job execution (drives Eq. 1–4 style analysis)."""

    job_name: str
    started_at: float = 0.0
    finished_at: float = 0.0
    submit_s: float = 0.0
    schedule_s: float = 0.0
    compute_s: float = 0.0          # summed across subtasks (CPU-seconds)
    gpu_kernel_s: float = 0.0       # summed kernel time (GFlink operators)
    #: Kernel seconds per kernel name — fused chains report every stage
    #: separately here (repro.flink.report.breakdown prints them).
    gpu_stage_seconds: Dict[str, float] = field(default_factory=dict)
    pcie_bytes: float = 0.0         # H2D+D2H traffic (GFlink operators)
    shuffle_bytes: float = 0.0
    #: Exchange bytes that took the columnar zero-copy path (no per-row
    #: serde; counted regardless of locality) and bytes spilled through
    #: HDFS because a destination payload exceeded the spill threshold.
    shuffle_zero_copy_bytes: float = 0.0
    shuffle_spill_bytes: float = 0.0
    #: Blocks charged at the vectorized (SIMD block) CPU rate.
    vectorized_blocks: int = 0
    hdfs_read_bytes: float = 0.0
    hdfs_write_bytes: float = 0.0
    retries: int = 0
    subtasks: int = 0
    #: Partitions recomputed by lineage recovery after a worker loss.
    recovered_partitions: int = 0
    #: GPU subtasks that degraded to CPU execution (all devices blacklisted).
    fallback_tasks: int = 0
    #: Streaming-executor counters (zero under the staged executor): the
    #: deepest block-queue occupancy seen, producer stalls on full queues
    #: (count and stalled seconds), and H2D copies that waited for host
    #: bytes to stream in.  Surfaced by repro.flink.report.breakdown.
    pipeline_max_queue_depth: int = 0
    pipeline_backpressure_stalls: int = 0
    pipeline_backpressure_s: float = 0.0
    pipeline_h2d_starved: int = 0
    operator_spans: Dict[int, OperatorSpan] = field(default_factory=dict)
    #: Operators materialized by THIS job (cleanup is per-job so concurrent
    #: applications on one cluster do not evict each other's intermediates).
    materialized_uids: Set[int] = field(default_factory=set)

    @property
    def makespan(self) -> float:
        """Simulated wall time of the whole job."""
        return self.finished_at - self.started_at

    def span_of(self, name: str) -> Optional[OperatorSpan]:
        """First operator span with the given name (convenience for tests)."""
        for span in self.operator_spans.values():
            if span.name == name:
                return span
        return None


class TaskContext:
    """Everything a subtask needs at run time.

    GPU operators reach their worker's GPUManager via ``worker.gpumanager``;
    CPU operators use :meth:`charge_compute`, which implements the
    one-element-at-a-time iterator cost model.
    """

    def __init__(self, cluster: "Cluster", vertex: ExecutionVertex,
                 metrics: JobMetrics, n_subtasks: int,
                 preassigned_partition: Optional[Partition] = None,
                 in_stream=None, in_slot: Optional[int] = None,
                 out_stream=None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.worker = cluster.workers[vertex.worker]
        self.master_name = cluster.master_name
        self.config = cluster.config
        self.network = cluster.network
        self.hdfs = cluster.hdfs
        self.serializer = cluster.serializer
        self.metrics = metrics
        self.subtask_index = vertex.subtask_index
        self.n_subtasks = n_subtasks
        self.assigned_blocks = vertex.assigned_blocks
        self.preassigned_partition = preassigned_partition
        self.op_name = vertex.op.name
        # Pipelined executor wiring (repro.flink.pipeline.BlockStream):
        # ``in_stream`` carries the input partition's block availability
        # (``in_slot`` is this consumer's subscriber cursor), ``out_stream``
        # is where this subtask publishes its own blocks.  All None under
        # the staged executor.  Per-attempt: a retry gets a fresh context,
        # so its charges replay from the start (streams are idempotent).
        self.in_stream = in_stream
        self.in_slot = in_slot
        self.out_stream = out_stream
        self._stream_consumed = False

    def stream_reserve(self, stream, block_index: int
                       ) -> Generator[Event, None, None]:
        """Producer-side credit wait on a bounded block stream.

        Records a backpressure stall span on this worker's "pipeline" lane
        (plus registry counters) whenever the queue is actually full.
        """
        evt = stream.reserve(block_index)
        if evt.triggered:
            yield evt
            return
        stream.stall_count += 1
        self.metrics.pipeline_backpressure_stalls += 1
        obs = self.cluster.obs
        obs.registry.counter("pipeline.backpressure.stalls",
                             op=self.op_name).inc()
        tracer = obs.tracer
        t0 = self.env.now
        with tracer.span("backpressure", "pipeline",
                         tracer.track(self.worker.name, "pipeline"),
                         op=self.op_name, subtask=self.subtask_index,
                         block=block_index):
            yield evt
        stalled = self.env.now - t0
        stream.stall_seconds += stalled
        self.metrics.pipeline_backpressure_s += stalled
        obs.monitor.count("pipeline.backpressure.stall_s", stalled,
                          op=self.op_name)

    def charge_compute(self, nominal_elements: float,
                       flops_per_element: float,
                       element_overhead_s: Optional[float] = None
                       ) -> Generator[Event, None, None]:
        """Charge CPU time for processing ``nominal_elements`` elements.

        ``time = n * (iterator_overhead + flops / per-core-throughput)`` —
        the iterator model of §3.1: each element pays a virtual call before
        its arithmetic.  ``element_overhead_s`` overrides the engine default
        for object-heavy UDFs (see :class:`repro.flink.plan.OpCost`).

        Under the pipelined executor the *first* charge of a streaming
        consumer is interleaved with upstream block arrivals: the per-block
        share of the total waits for that block to be published, then (if
        this operator relays a stream) republishes it downstream.  The cost
        model is linear, so the interleaved charges sum to exactly the
        staged total; only the clock shape differs.
        """
        overhead = (self.config.flink.element_overhead_s
                    if element_overhead_s is None else element_overhead_s)
        per_element = (overhead
                       + flops_per_element / self.config.cpu.flops_per_core)
        yield from self._charge_linear(nominal_elements * per_element)

    def charge_block_compute(self, nominal_elements: float,
                             flops_per_element: float,
                             nominal_nbytes: float
                             ) -> Generator[Event, None, None]:
        """Charge CPU time for a *vectorized block* operator.

        ``time = n_blocks * block_overhead + n * flops / simd-throughput``:
        one dispatch per pipeline-sized block instead of a virtual call per
        element, with arithmetic at the SIMD rate
        (:attr:`repro.flink.config.CPUSpec.simd_flops_per_core`).  Used for
        UDFs marked :func:`repro.flink.iterators.vectorized` when
        ``FlinkConfig.vectorized_ops`` is on; functional results are
        unchanged — only the charge model differs.
        """
        flink = self.config.flink
        # Block width through the *tuning* overlay, not the frozen config:
        # the autoscaler widens it online; results are unchanged (the
        # charge model only shifts dispatch overhead).
        n_blocks = max(1, math.ceil(nominal_nbytes
                                    / self.cluster.tuning.pipeline_block_nbytes))
        seconds = (n_blocks * flink.block_overhead_s
                   + nominal_elements * flops_per_element
                   / self.config.cpu.simd_flops_per_core)
        self.metrics.vectorized_blocks += n_blocks
        self.cluster.obs.registry.counter(
            "cpu.vectorized.blocks", op=self.op_name).inc(n_blocks)
        yield from self._charge_linear(seconds)

    def _charge_linear(self, seconds: float
                       ) -> Generator[Event, None, None]:
        """Charge ``seconds`` of CPU time, streaming-aware (see above)."""
        self.metrics.compute_s += seconds
        stream = self.in_stream
        if (stream is not None and not self._stream_consumed
                and stream.n_blocks > 0 and stream.total_nbytes > 0):
            self._stream_consumed = True
            out = self.out_stream
            charged = 0.0
            for k in range(stream.n_blocks):
                if out is not None:
                    yield from self.stream_reserve(out, k)
                yield stream.when_blocks(k + 1)
                # Last block absorbs rounding so the sum is exact.
                target = seconds if k == stream.n_blocks - 1 else (
                    seconds * stream.cum_nbytes(k + 1) / stream.total_nbytes)
                if target > charged:
                    yield self.env.timeout(target - charged)
                    charged = target
                stream.ack(self.in_slot, k + 1)
                if out is not None:
                    out.publish(k)
                # Drive the monitor's lazy window clock from the hottest
                # streaming loop (no-op when monitoring is off).
                self.cluster.obs.monitor.tick()
            if out is not None:
                out.close()
            return
        yield self.env.timeout(seconds)

    def hdfs_append(self, path: str, payload: Any,
                    nbytes: int) -> Generator[Event, None, None]:
        """Append one block to ``path`` from this subtask's worker."""
        yield from self.hdfs.append_block(path, payload, nbytes,
                                          writer_node=self.worker.name)


class JobManager:
    """Coordinates job execution on the cluster master."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config
        self.jobs_run = 0

    # -- main entry point ------------------------------------------------------
    def run_job(self, sinks: List[Operator], job_name: str,
                failure_injector: Optional[FailureInjector] = None
                ) -> Generator[Event, None, JobMetrics]:
        """Simulation process executing one job; returns its metrics.

        Sink outputs are left in ``cluster.materialized`` for the session to
        extract before cleanup (see :meth:`cleanup`).
        """
        metrics = JobMetrics(job_name=job_name, started_at=self.env.now)
        hdfs_read0 = self.cluster.hdfs.total_bytes_read()
        hdfs_write0 = self.cluster.hdfs.total_bytes_written()
        obs = self.cluster.obs
        obs.monitor.tick()
        tracer = obs.tracer
        jm_track = tracer.track(self.cluster.master_name, "jobmanager")

        with tracer.span(f"job:{job_name}", "job", jm_track, job=job_name):
            with tracer.span("job.submit", "job", jm_track, job=job_name):
                yield self.env.timeout(self.config.flink.job_submit_s)
            metrics.submit_s = self.config.flink.job_submit_s

            flink = self.config.flink
            if flink.enable_chaining or flink.enable_gpu_chaining:
                from repro.flink.optimizer import apply_chaining
                sinks = apply_chaining(sinks, cpu=flink.enable_chaining,
                                       gpu=flink.enable_gpu_chaining)
            graph = ExecutionGraph(sinks, self.cluster.default_parallelism)
            # Live membership, not the static config list: workers that
            # join mid-job become placement candidates immediately, drained
            # and departed ones stop being considered.
            scheduler = Scheduler(self.cluster.member_names, tracer=tracer,
                                  health=self.cluster.worker_is_schedulable,
                                  monitor=obs.monitor,
                                  tuning=self.cluster.tuning)

            if flink.executor == "pipelined":
                from repro.flink.pipeline import PipelinedExecutor
                executor = PipelinedExecutor(self, graph, scheduler,
                                             metrics, failure_injector)
                yield from executor.run()
            else:
                for op in graph.order:
                    if op.uid in self.cluster.materialized:
                        # Persisted from an earlier job — but a worker loss
                        # may have taken some of its partitions down with
                        # it; lineage recovery recomputes exactly those.
                        yield from self._recover_dataset(
                            op, graph, scheduler, metrics, failure_injector)
                        continue
                    yield from self._run_operator(op, graph, scheduler,
                                                  metrics, failure_injector)
                    metrics.materialized_uids.add(op.uid)

            metrics.finished_at = self.env.now
        metrics.hdfs_read_bytes = (self.cluster.hdfs.total_bytes_read()
                                   - hdfs_read0)
        metrics.hdfs_write_bytes = (self.cluster.hdfs.total_bytes_written()
                                    - hdfs_write0)
        self.jobs_run += 1
        reg = obs.registry
        reg.counter("jobs.completed").inc()
        reg.counter("job.subtasks", job=job_name).inc(metrics.subtasks)
        if metrics.shuffle_bytes:
            reg.counter("shuffle.bytes", job=job_name).inc(
                metrics.shuffle_bytes)
        if metrics.shuffle_zero_copy_bytes:
            reg.counter("shuffle.zero_copy.bytes", job=job_name).inc(
                metrics.shuffle_zero_copy_bytes)
        if metrics.shuffle_spill_bytes:
            reg.counter("shuffle.spill.bytes", job=job_name).inc(
                metrics.shuffle_spill_bytes)
        reg.histogram("job.makespan_s").observe(metrics.makespan)
        obs.monitor.job_completed(job_name, metrics.makespan)
        return metrics

    # -- per-operator execution ----------------------------------------------------
    def _run_operator(self, op: Operator, graph: ExecutionGraph,
                      scheduler: Scheduler, metrics: JobMetrics,
                      injector: Optional[FailureInjector],
                      only: Optional[Set[int]] = None
                      ) -> Generator[Event, None, None]:
        """Run (or partially re-run) one operator's subtask wave.

        When ``only`` is given this is a lineage-recovery pass: a *fresh*
        job vertex is scheduled at the dataset's original parallelism, the
        exchanges ship data only to the lost consumer indices, and only
        those subtasks execute; their outputs replace the lost partitions
        in ``cluster.materialized``.
        """
        recovering = only is not None
        if recovering:
            # A fresh vertex: graph vertices accumulate state (assigned
            # blocks, attempts) that must not double up across recoveries,
            # and the lost dataset's parallelism may differ from this job's.
            jv = ExecutionJobVertex(op, len(self.cluster.materialized[op.uid]))
            jv.expand()
        else:
            jv = graph.job_vertex(op)
        preassigned: List[Optional[Partition]] = [None] * jv.parallelism
        per_subtask_inputs: List[List[Partition]] = [
            [] for _ in range(jv.parallelism)]
        tracer = self.cluster.obs.tracer
        jm_track = tracer.track(self.cluster.master_name, "jobmanager")
        span_name = (f"recover:{op.name}" if recovering else f"op:{op.name}")
        span_cat = "recovery" if recovering else "operator"

        with tracer.span(span_name, span_cat, jm_track, op=op.name,
                         parallelism=jv.parallelism):
            if isinstance(op, HdfsSource):
                scheduler.schedule_source(jv, self.cluster.hdfs)
            elif isinstance(op, CollectionSource):
                parts = split_evenly(op.elements, jv.parallelism,
                                     op.element_nbytes, op.scale)
                scheduler.schedule_collection_source(jv, parts)
                preassigned = list(parts)
            else:
                if not recovering:
                    # Inputs materialized earlier (this job or a previous
                    # one) may have lost partitions to a worker death —
                    # recompute exactly those before consuming them.
                    for inp in op.inputs:
                        yield from self._recover_dataset(
                            inp, graph, scheduler, metrics, injector)
                producer_parts = [self.cluster.materialized[inp.uid]
                                  for inp in op.inputs]
                scheduler.schedule_consumer(jv, graph, producer_parts)
                consumer_workers = [v.worker for v in jv.subtasks]
                ex_track = tracer.track(self.cluster.master_name, "exchange")
                for k, (inp, strat) in enumerate(zip(op.inputs,
                                                     op.strategies)):
                    exchange = Exchange(
                        self.env, self.cluster.network,
                        self.cluster.serializer, strat, producer_parts[k],
                        jv.parallelism, consumer_workers,
                        key_fn=op.key_fn_for_input(k),
                        combiner=op.combiner_for_input(k),
                        only_consumers=only,
                        hdfs=self.cluster.hdfs,
                        flink=self.config.flink)
                    with tracer.span(f"exchange:{op.name}", "shuffle",
                                     ex_track, op=op.name, input=k,
                                     strategy=strat.name) as sp:
                        result = yield self.env.process(
                            exchange.run(), name=f"exchange-{op.name}-{k}")
                        sp.set(bytes=result.bytes_shuffled,
                               zero_copy=result.bytes_zero_copy)
                    metrics.shuffle_bytes += result.bytes_shuffled
                    metrics.shuffle_zero_copy_bytes += result.bytes_zero_copy
                    metrics.shuffle_spill_bytes += result.bytes_spilled
                    for j, part in enumerate(result.inputs):
                        per_subtask_inputs[j].append(part)

            if isinstance(op, HdfsSink) and not recovering:
                self.cluster.hdfs.namenode.create_file(op.path)

            start = self.env.now
            run_indices = (sorted(only) if recovering
                           else range(jv.parallelism))
            subtask_procs = [
                self.env.process(
                    self._run_subtask(jv.subtasks[i], per_subtask_inputs[i],
                                      preassigned[i], jv.parallelism, metrics,
                                      injector, scheduler),
                    name=f"{op.name}[{i}]")
                for i in run_indices
            ]
            results = yield self.env.all_of(subtask_procs)
            outputs = sorted(results.values(), key=lambda p: p.index)

            if not recovering:
                metrics.operator_spans[op.uid] = OperatorSpan(
                    name=op.name, parallelism=jv.parallelism,
                    start=start, end=self.env.now)
            metrics.subtasks += len(subtask_procs)

        if recovering:
            existing = self.cluster.materialized[op.uid]
            pos = {p.index: i for i, p in enumerate(existing)}
            for part in outputs:
                existing[pos[part.index]] = part
            metrics.recovered_partitions += len(outputs)
            self.cluster.obs.registry.counter(
                "recovery.recomputed_partitions", op=op.name).inc(
                    len(outputs))
            self.cluster.note_recovery_action("recompute")
        else:
            self.cluster.materialized[op.uid] = outputs
        for part in outputs:
            worker = self.cluster.workers.get(part.worker)
            if worker is not None:
                worker.taskmanager.put_partition(op.uid, part)
        scheduler.release(jv)

    # -- lineage recovery ------------------------------------------------------
    def _recover_dataset(self, op: Operator, graph: ExecutionGraph,
                         scheduler: Scheduler, metrics: JobMetrics,
                         injector: Optional[FailureInjector]
                         ) -> Generator[Event, None, None]:
        """Recompute the partitions of ``op`` lost to dead workers.

        Healthy partitions are left untouched: recovery re-executes the
        producing operator only for the lost indices (after recursively
        recovering its own inputs).  A dataset missing entirely — evicted
        intermediates an earlier job cleaned up — is re-run in full.
        """
        parts = self.cluster.materialized.get(op.uid)
        if parts is None:
            yield from self._run_operator(op, graph, scheduler, metrics,
                                          injector)
            # Re-materialized by this job: mark for this job's cleanup so a
            # non-persisted input does not linger after recovery.
            metrics.materialized_uids.add(op.uid)
            return
        lost = {p.index for p in parts
                if not self.cluster.worker_is_alive(p.worker)}
        if not lost:
            return
        for inp in op.inputs:
            yield from self._recover_dataset(inp, graph, scheduler, metrics,
                                             injector)
        yield from self._run_operator(op, graph, scheduler, metrics,
                                      injector, only=lost)

    def _run_subtask(self, vertex: ExecutionVertex,
                     inputs: List[Partition],
                     preassigned: Optional[Partition],
                     n_subtasks: int, metrics: JobMetrics,
                     injector: Optional[FailureInjector],
                     scheduler: Scheduler,
                     needs_slot: bool = True,
                     in_stream=None, in_slot: Optional[int] = None,
                     out_stream=None
                     ) -> Generator[Event, None, Partition]:
        op = vertex.op
        flink = self.config.flink
        obs = self.cluster.obs
        tracer = obs.tracer
        proc = self.env.active_process
        while True:
            # Re-resolved each attempt: a retried or displaced subtask may
            # have been re-placed onto a different worker.
            worker = self.cluster.workers[vertex.worker]
            # One lane per task slot: concurrent subtasks on a worker render
            # on separate rows, queued ones stack up in simulated time.
            task_track = tracer.track(
                worker.name,
                f"slot{vertex.subtask_index % self.config.slots}")
            failure: Optional[TaskFailure] = None
            worker_lost = False
            worker.taskmanager.register_running(proc)
            try:
                with worker.taskmanager.claim_slot(
                        shared=not needs_slot) as slot:
                    if slot is not None:
                        yield slot
                    with tracer.span(f"{op.name}[{vertex.subtask_index}]",
                                     "task", task_track, op=op.name,
                                     subtask=vertex.subtask_index,
                                     attempt=vertex.attempts) as sp:
                        overhead = flink.task_schedule_s + flink.task_deploy_s
                        metrics.schedule_s += overhead
                        obs.monitor.observe("sched.place_latency_s",
                                            overhead, op=op.name)
                        yield self.env.timeout(overhead)
                        ctx = TaskContext(self.cluster, vertex, metrics,
                                          n_subtasks,
                                          preassigned_partition=preassigned,
                                          in_stream=in_stream,
                                          in_slot=in_slot,
                                          out_stream=out_stream)
                        try:
                            if injector is not None and injector.check(
                                    op.name, vertex.subtask_index,
                                    vertex.attempts):
                                tracer.instant(
                                    "fault.injected", "fault", task_track,
                                    op=op.name,
                                    subtask=vertex.subtask_index,
                                    attempt=vertex.attempts)
                                obs.registry.counter("faults.injected",
                                                     op=op.name).inc()
                                raise TaskFailure(op.name,
                                                  vertex.subtask_index,
                                                  vertex.attempts)
                            if out_stream is not None \
                                    and isinstance(op, HdfsSource):
                                partition = yield from op.execute_streaming(
                                    ctx, out_stream)
                            else:
                                partition = yield from op.execute_subtask(
                                    ctx, inputs)
                            if in_stream is not None:
                                # A consumer may not outrun its input's
                                # timing plane (e.g. a zero-cost relay).
                                yield in_stream.when_blocks(
                                    in_stream.n_blocks)
                                in_stream.ack_all(in_slot)
                            if out_stream is not None:
                                out_stream.close()
                        except TaskFailure as exc:
                            sp.set(failed=True)
                            failure = exc
                if failure is None:
                    worker.taskmanager.tasks_executed += 1
                    obs.monitor.task_attempt(op.name, ok=True)
                    if vertex.attempts:
                        self.cluster.note_recovery_action("retry-ok")
                    return partition
            except InterruptError as exc:
                # The worker died under us (slot wait included): the attempt
                # is charged, and the retry must escape to another node.
                worker_lost = True
                failure = TaskFailure(
                    op.name, vertex.subtask_index, vertex.attempts,
                    cause=f"worker {worker.name} lost: {exc.cause}")
            finally:
                worker.taskmanager.unregister_running(proc)

            vertex.attempts += 1
            metrics.retries += 1
            tracer.instant(
                "task.retry", "fault", task_track, op=op.name,
                subtask=vertex.subtask_index,
                attempt=vertex.attempts - 1,
                cause="worker-lost" if worker_lost
                else type(failure).__name__)
            obs.registry.counter("task.retries", op=op.name).inc()
            obs.monitor.task_attempt(op.name, ok=False)
            if vertex.attempts > flink.max_task_retries:
                raise JobExecutionError(
                    f"{op.name}[{vertex.subtask_index}] failed "
                    f"after {vertex.attempts} attempts"
                ) from failure
            scheduler.note_fault(worker.name)
            if worker_lost:
                # Wait for the master to *declare* the death (heartbeat
                # timeout), then re-place away from the dead node.  If the
                # avoid set covers every healthy worker (correlated
                # failures), wait a back-off first — the fallback then
                # deterministically picks the least-recently-faulted node.
                yield self.cluster.worker_declared(worker.name)
                avoid = (worker.name,)
                if scheduler.all_avoided(avoid):
                    delay = backoff_delay(flink, vertex.attempts, op.name,
                                          vertex.subtask_index)
                    if delay > 0:
                        yield self.env.timeout(delay)
                scheduler.reschedule(vertex, avoid=avoid,
                                     reason="worker-lost")
                self.cluster.note_recovery_action("replace")
                tracer.instant(
                    "task.displaced", "fault", task_track, op=op.name,
                    subtask=vertex.subtask_index, worker=vertex.worker)
            else:
                delay = backoff_delay(flink, vertex.attempts, op.name,
                                      vertex.subtask_index)
                if delay > 0:
                    yield self.env.timeout(delay)
                scheduler.reschedule(vertex, reason="retry")

    # -- cleanup -------------------------------------------------------------------
    def extract_result(self, sink: Operator) -> Any:
        """Pull a sink's driver-visible value from the materialized store."""
        partitions = self.cluster.materialized.get(sink.uid, [])
        if isinstance(sink, CollectSink):
            return partitions[0].elements if partitions else []
        if isinstance(sink, CountSink):
            return partitions[0].elements[0] if partitions else 0.0
        if isinstance(sink, HdfsSink):
            return sink.path
        return None

    def cleanup(self, graph_order: List[Operator],
                materialized_uids: Set[int]) -> None:
        """Evict this job's non-persisted intermediates and sink outputs."""
        for op in graph_order:
            if op.uid not in materialized_uids:
                continue
            if not op.persisted:
                self.cluster.materialized.pop(op.uid, None)
                for worker in self.cluster.workers.values():
                    worker.taskmanager.drop_dataset(op.uid)
