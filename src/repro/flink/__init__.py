"""A from-scratch in-memory dataflow engine with Flink's architecture.

This package is the CPU substrate the paper extends: a master-slave,
JVM-style in-memory cluster computing engine exposing the DataSet (DST)
abstraction.  It reproduces the architectural features GFlink's design hooks
into:

* **DataSet API** (:mod:`repro.flink.dataset`) — ``map``, ``flat_map``,
  ``filter``, ``map_partition``, ``group_by(...).reduce(...)``, ``reduce``,
  ``join``, ``count``, ``collect``, HDFS sources/sinks, and ``persist`` for
  iterative jobs.
* **Logical plan → ExecutionGraph** (:mod:`repro.flink.plan`,
  :mod:`repro.flink.graph`) compiled per job.
* **JobManager / TaskManager / task slots**
  (:mod:`repro.flink.jobmanager`, :mod:`repro.flink.taskmanager`): one
  JobManager on the master coordinates; each worker's TaskManager executes
  subtasks in its slots (default one slot per CPU core).
* **One-element-at-a-time iterator execution model**
  (:mod:`repro.flink.iterators`) with per-element overhead — the very model
  §3.1 of the paper identifies as a mismatch for GPUs.
* **Hash shuffle** with serialization over the network
  (:mod:`repro.flink.shuffle`, :mod:`repro.flink.serialization`).
* **Page-based managed memory** (:mod:`repro.flink.memory`), both on-heap and
  off-heap — the off-heap pages are where GFlink parks its HBuffers.
* **Task-retry fault tolerance** (:mod:`repro.flink.fault`).

Timing is simulated (see :mod:`repro.common.simclock`); functional results
are computed for real so the test-suite asserts answers, not just clock
values.
"""

from repro.flink.config import FlinkConfig, ClusterConfig, CPUSpec
from repro.flink.partition import Partition
from repro.flink.dataset import DataSet, OpCost, vectorized_udf
from repro.flink.runtime import Cluster, FlinkSession, JobResult
from repro.flink.fault import FailureInjector

__all__ = [
    "FlinkConfig",
    "ClusterConfig",
    "CPUSpec",
    "Partition",
    "DataSet",
    "OpCost",
    "vectorized_udf",
    "Cluster",
    "FlinkSession",
    "JobResult",
    "FailureInjector",
]
