"""Cluster runtime and the user-facing session.

:class:`Cluster` wires together the simulation environment, network, HDFS,
workers and JobManager.  :class:`FlinkSession` is the driver-program entry
point: it creates DataSets and executes actions, each action running one job
on the simulated cluster and returning a :class:`JobResult` carrying both
the functional value and the simulated timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.network import Network
from repro.common.simclock import Environment
from repro.flink.config import ClusterConfig, RuntimeTuning
from repro.flink.dataset import DataSet
from repro.flink.fault import FailureInjector
from repro.flink.jobmanager import JobManager, JobMetrics
from repro.flink.partition import Partition
from repro.flink.plan import (
    CollectionSource,
    HdfsSource,
    Operator,
    topological_order,
)
from repro.flink.serialization import Serializer
from repro.flink.taskmanager import Worker
from repro.hdfs.filesystem import HDFS
from repro.obs import Observability


@dataclass
class JobResult:
    """What an action returns to the driver program."""

    value: Any
    metrics: JobMetrics

    @property
    def seconds(self) -> float:
        """Simulated wall time of the job."""
        return self.metrics.makespan


class Cluster:
    """A simulated CPU (or CPU-GPU) cluster: master + workers + HDFS."""

    master_name = "master"

    def __init__(self, config: Optional[ClusterConfig] = None,
                 env: Optional[Environment] = None):
        self.config = config or ClusterConfig()
        self.env = env or Environment()
        # Tracing + metrics + online monitoring for everything this
        # cluster runs (repro.obs).
        flink = self.config.flink
        self.obs = Observability(
            self.env, enabled=flink.enable_tracing,
            monitoring=flink.enable_monitoring,
            monitor_window_s=flink.monitor_window_s,
            monitor_retention=flink.monitor_retention_windows,
            flight_recorder=flink.enable_flight_recorder,
            flight_recorder_dir=flink.flight_recorder_dir,
            flight_recorder_spans=flink.flight_recorder_spans,
            flight_recorder_windows=flink.flight_recorder_windows,
            flight_recorder_max_bundles=flink.flight_recorder_max_bundles)
        names = self.config.worker_names()
        for name in names:
            self.obs.monitor.register_worker(name)
        self.network = Network(self.env, [self.master_name] + names,
                               self.config.network)
        self.hdfs = HDFS(self.env, names, self.network,
                         replication=self.config.hdfs_replication,
                         disk=self.config.disk, obs=self.obs)
        self.workers: Dict[str, Worker] = {
            name: self._make_worker(name) for name in names
        }
        self.serializer = Serializer(
            self.config.flink.serde_bps,
            block_header_s=self.config.flink.shuffle_block_header_s)
        self.jobmanager = JobManager(self)
        # op uid -> materialized partitions; survives jobs for persisted ops.
        self.materialized: Dict[int, List[Partition]] = {}
        # Failure domains (repro.flink.chaos): the installed engine, plus
        # master-side death declarations and their waiter events.
        self.chaos = None
        self._declared_dead: Dict[str, float] = {}
        self._declare_waiters: Dict[str, Any] = {}
        # Elastic membership: the *live* member list (initial workers plus
        # joiners, minus drained/removed ones) in join order.  Logical
        # partitioning stays pinned to the initial shape (see
        # default_parallelism) so results are bit-identical under churn —
        # membership changes placement and timing only.
        self._members: List[str] = list(names)
        self._next_elastic_id = 0
        # Online-tunable knobs (autoscaler); consumers read these instead of
        # the frozen FlinkConfig fields they mirror.
        self.tuning = RuntimeTuning.from_flink(flink)
        # Recovery-action log: (time, kind) of every master-visible step
        # back toward steady state (declarations, re-placements, lineage
        # recomputes, migrations).  Appends only — never schedules events —
        # so the clock is unaffected.  ChaosEngine.summary() windows this
        # per fault to derive recovery latency / time-to-steady-state.
        self.recovery_log: List[Tuple[float, str]] = []

    @property
    def default_parallelism(self) -> int:
        """Default operator parallelism: one subtask per *initial* slot.

        Deliberately pinned to the configured shape, not live membership:
        hash routing, partition indices and collect order all derive from
        parallelism, so keeping it fixed is what makes results bit-identical
        under churn — joiners add capacity (slots, disks, NICs), not
        partitions.
        """
        return self.config.total_slots

    @property
    def worker_list(self) -> List[Worker]:
        return list(self.workers.values())

    def _make_worker(self, name: str) -> Worker:
        """Build one worker node (GFlinkCluster also attaches a GPUManager)."""
        return Worker(self.env, name, self.config)

    # -- elastic membership -------------------------------------------------------
    def member_names(self) -> List[str]:
        """Current cluster members (initial + joined − departed), join order."""
        return list(self._members)

    def is_member(self, name: str) -> bool:
        return name in self._members

    def worker_is_schedulable(self, name: str) -> bool:
        """May new subtasks be placed on ``name``?  (alive member, not
        draining — the scheduler's health predicate)."""
        worker = self.workers.get(name)
        return (worker is not None and worker.alive
                and not worker.draining and name in self._members)

    def _churn_instant(self, name: str, worker: str, **args: Any) -> None:
        tracer = self.obs.tracer
        tracer.instant(name, "churn",
                       tracer.track(self.master_name, "membership"),
                       worker=worker, **args)

    def add_worker(self, name: Optional[str] = None,
                   rebalance: Optional[bool] = None) -> str:
        """Register a new worker node mid-run; returns its name.

        The joiner gets a TaskManager (with fresh slots), a co-located HDFS
        datanode (eligible for new block placements), a network port, and is
        enrolled with the monitor and the heartbeat plane.  It becomes
        schedulable immediately; when ``rebalance`` (default
        ``FlinkConfig.rebalance_on_join``) is on and cached partitions
        exist, a background process migrates a fair share onto it over the
        zero-copy wire (see :mod:`repro.flink.rebalance`).
        """
        if name is None:
            name = f"elastic{self._next_elastic_id}"
            self._next_elastic_id += 1
        if name in self.workers:
            raise ValueError(f"worker {name!r} already exists "
                             "(departed names cannot rejoin)")
        self.network.add_node(name)
        self.hdfs.add_datanode(name)
        self.workers[name] = self._make_worker(name)
        self._members.append(name)
        self.obs.monitor.register_worker(name)
        self._churn_instant("churn.join", name)
        self.obs.registry.counter("churn.joins", worker=name).inc()
        self.obs.monitor.count("churn.events", event="join")
        do_rebalance = (self.config.flink.rebalance_on_join
                        if rebalance is None else rebalance)
        if do_rebalance and any(self.materialized.values()):
            from repro.flink.rebalance import Rebalancer
            self.env.process(Rebalancer(self).rebalance_onto(name),
                             name=f"rebalance-{name}")
        return name

    def drain_worker(self, name: str):
        """Simulation process: gracefully remove ``name`` from the cluster.

        Unlike :meth:`fail_worker` nothing is lost and nothing recomputes:
        the worker stops accepting placements, in-flight subtasks run to
        completion, resident cached partitions migrate to surviving members
        over the zero-copy wire, the co-located datanode is decommissioned
        (its replicas re-homed), and only then does the node leave.  The
        departure is recorded as a *declaration* so any straggler waiting on
        the node is released, but none of the failure counters fire.
        """
        from repro.flink.rebalance import Rebalancer
        if name not in self._members:
            raise ValueError(f"{name!r} is not a cluster member")
        worker = self.workers[name]
        if not worker.alive or worker.draining:
            return
        worker.draining = True
        started = self.env.now
        self._churn_instant("churn.drain.start", name)
        self.obs.registry.counter("churn.drains", worker=name).inc()
        self.obs.monitor.count("churn.events", event="drain")
        yield worker.taskmanager.quiesced()
        if not worker.alive:
            return  # killed mid-drain: the failure path owns recovery
        yield from Rebalancer(self).migrate_off(name)
        yield from self.hdfs.decommission(name)
        datanode = self.hdfs.datanodes.get(name)
        if datanode is not None and datanode.alive:
            datanode.fail()
        if name in self._members:
            self._members.remove(name)
        worker.alive = False
        worker.departed = True
        # Graceful departures are declared instantly (no detection latency)
        # and silently: nothing was lost, so the fault counters stay quiet.
        if name not in self._declared_dead:
            self._declared_dead[name] = self.env.now
            waiter = self._declare_waiters.pop(name, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(name)
        self._churn_instant("churn.drain.done", name,
                            seconds=self.env.now - started)
        self.note_recovery_action("drain-complete")

    def remove_worker(self, name: str) -> None:
        """Abrupt leave: the node disappears mid-job, permanently.

        Reuses the whole failure-domain machinery — subtasks are
        interrupted, partitions lost (lineage recovery recomputes them),
        the datanode dies (reads fail over to surviving replicas) — and
        additionally strikes the node from the member list so it is never
        placed onto again even after future jobs reset scheduler state.
        """
        if name not in self._members:
            raise ValueError(f"{name!r} is not a cluster member")
        self._members.remove(name)
        self._churn_instant("churn.leave", name)
        self.obs.registry.counter("churn.leaves", worker=name).inc()
        self.obs.monitor.count("churn.events", event="leave")
        self.fail_worker(name)

    def note_recovery_action(self, kind: str) -> None:
        """Log one recovery step (passive: never touches the clock)."""
        self.recovery_log.append((self.env.now, kind))

    # -- failure domains (repro.flink.chaos) --------------------------------------
    def install_chaos(self, schedule) -> Any:
        """Install a :class:`~repro.flink.chaos.ChaosSchedule`.

        Starts the chaos injector and the master's heartbeat monitor;
        returns the :class:`~repro.flink.chaos.ChaosEngine`.  Without this
        call no failure-detection process ever runs, so fault-free
        simulations keep a bit-identical clock.
        """
        from repro.flink.chaos import ChaosEngine
        if self.chaos is not None:
            raise ValueError("a chaos schedule is already installed")
        self.chaos = ChaosEngine(self, schedule)
        return self.chaos

    def worker_is_alive(self, name: Optional[str]) -> bool:
        """Liveness of ``name`` (unknown/driver-side locations count alive)."""
        worker = self.workers.get(name) if name is not None else None
        return worker.alive if worker is not None else True

    def healthy_worker_names(self) -> List[str]:
        """Names of live member workers, in stable membership order."""
        return [name for name in self._members
                if self.workers[name].alive]

    def fail_worker(self, name: str) -> None:
        """Kill a worker node: its whole failure domain goes down at once.

        Running and queued subtasks are interrupted, the TaskManager's
        partition store is dropped (lineage recovery will recompute what is
        needed), and the co-located HDFS datanode fails with it — reads fail
        over to surviving replicas.  Detection (the declaration that frees
        displaced subtasks to re-place) happens separately, through the
        chaos engine's heartbeat monitor — or immediately when no chaos
        engine is installed (manual kills in tests).
        """
        worker = self.workers[name]
        if not worker.alive:
            return
        worker.fail()
        datanode = self.hdfs.datanodes.get(name)
        if datanode is not None and datanode.alive:
            datanode.fail()
        tracer = self.obs.tracer
        tracer.instant("worker.dead", "fault",
                       tracer.track(self.master_name, "failures"),
                       worker=name)
        self.obs.registry.counter("worker.failures", worker=name).inc()
        self.obs.monitor.worker_down(name)
        if self.chaos is None:
            self.declare_worker_dead(name)
        else:
            self.chaos.ensure_monitor()

    def worker_is_declared_dead(self, name: str) -> bool:
        """True once the master has detected (declared) the worker's death."""
        return name in self._declared_dead

    def declare_worker_dead(self, name: str) -> None:
        """Master-side death declaration: wake everything waiting on it."""
        if name in self._declared_dead:
            return
        self._declared_dead[name] = self.env.now
        tracer = self.obs.tracer
        tracer.instant("worker.declared_dead", "fault",
                       tracer.track(self.master_name, "failures"),
                       worker=name)
        self.obs.registry.counter("worker.declared_dead", worker=name).inc()
        self.obs.monitor.worker_declared_dead(name)
        self.note_recovery_action("declare")
        waiter = self._declare_waiters.pop(name, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(name)

    def worker_declared(self, name: str):
        """An event firing when ``name``'s death is declared.

        Already-declared (or still-alive) workers yield an event that fires
        immediately: displaced subtasks wait exactly the remaining detection
        latency, never longer.
        """
        if name in self._declared_dead or self.worker_is_alive(name):
            return self.env.timeout(0.0)
        waiter = self._declare_waiters.get(name)
        if waiter is None:
            waiter = self.env.event()
            self._declare_waiters[name] = waiter
        return waiter

    # -- data loading outside of a job (test/bench setup) ---------------------------
    def load_hdfs_file(self, path: str, chunks: List[Tuple[Any, int]]) -> None:
        """Write a file into HDFS instantly (setup helper, no time charged).

        Benchmarks use this to pre-populate inputs; the *jobs* then pay the
        read cost, which is what the paper measures.
        """
        now = self.env.now
        proc = self.env.process(self.hdfs.write(path, chunks))
        self.env.run(until=proc)
        # Rewind is impossible in a DES; instead verify setup happens at t=0
        # or accept the offset — metrics use makespan, not absolute time.
        assert self.env.now >= now


class FlinkSession:
    """Driver-program facade: create DataSets, run jobs.

    Also the base for the GFlink session (:class:`repro.core.runtime.GFlinkSession`),
    which adds GPU datasets on the same cluster.
    """

    def __init__(self, cluster: Cluster,
                 failure_injector: Optional[FailureInjector] = None):
        self.cluster = cluster
        self.failure_injector = failure_injector
        self.history: List[JobMetrics] = []

    # -- sources ----------------------------------------------------------------
    def from_collection(self, elements: Any, element_nbytes: float = 32.0,
                        scale: float = 1.0,
                        parallelism: Optional[int] = None) -> DataSet:
        """A DataSet from a driver-side collection."""
        return DataSet(self, CollectionSource(
            elements, element_nbytes, scale=scale, parallelism=parallelism))

    def read_hdfs(self, path: str, element_nbytes: float,
                  parser: Optional[Callable[[Any], Any]] = None,
                  scale: float = 1.0,
                  parallelism: Optional[int] = None) -> DataSet:
        """A DataSet backed by an HDFS file (locality-aware block reads)."""
        return DataSet(self, HdfsSource(
            path, element_nbytes, parser=parser, scale=scale,
            parallelism=parallelism))

    # -- job execution ----------------------------------------------------------
    def execute_job(self, sink: Operator, job_name: str = "job"):
        """Simulation process running one job (``yield from`` inside a
        driver process).  This is what lets multiple applications share one
        cluster concurrently (Fig. 8c/d); :meth:`execute` is the blocking
        convenience wrapper.
        """
        jm = self.cluster.jobmanager
        metrics = yield from jm.run_job(
            [sink], job_name, failure_injector=self.failure_injector)
        value = jm.extract_result(sink)
        jm.cleanup(topological_order([sink]), metrics.materialized_uids)
        self.history.append(metrics)
        return JobResult(value=value, metrics=metrics)

    def execute(self, sink: Operator, job_name: str = "job") -> JobResult:
        """Run the plan rooted at ``sink`` as one job (drives the clock)."""
        proc = self.cluster.env.process(
            self.execute_job(sink, job_name), name=f"job-{job_name}")
        return self.cluster.env.run(until=proc)

    def total_simulated_seconds(self) -> float:
        """Sum of makespans over all jobs run in this session."""
        return sum(m.makespan for m in self.history)
