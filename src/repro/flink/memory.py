"""Page-based managed memory, Flink style.

Flink pre-allocates its managed memory as fixed-size pages (memory segments)
and hands them to operators; GFlink stores GStruct raw bytes in *off-heap*
segments so they can be DMA'd to GPUs without copies, and sizes its transfer
blocks to exactly one page so a GStruct never straddles a page boundary
(paper §5.1).  This module provides that allocator with on-heap/off-heap
pools and allocation bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigError, MemoryExhaustedError


class MemoryKind(Enum):
    """Where a segment lives — governs whether the GPU DMA can see it."""

    HEAP = "heap"          # inside the garbage-collected JVM heap
    OFF_HEAP = "off_heap"  # direct buffers: stable addresses, DMA-able


@dataclass(frozen=True)
class MemorySegment:
    """A fixed-size page of managed memory."""

    segment_id: int
    nbytes: int
    kind: MemoryKind

    @property
    def dma_capable(self) -> bool:
        """Only off-heap segments have stable physical addresses (§4.1.2)."""
        return self.kind is MemoryKind.OFF_HEAP


class MemoryManager:
    """Per-TaskManager page allocator with heap and off-heap pools."""

    def __init__(self, total_bytes: int, page_size: int,
                 off_heap_fraction: float = 0.5):
        if total_bytes <= 0 or page_size <= 0:
            raise ConfigError("memory sizes must be positive")
        if not 0.0 <= off_heap_fraction <= 1.0:
            raise ConfigError(
                f"off_heap_fraction must be in [0,1]: {off_heap_fraction}")
        self.page_size = page_size
        total_pages = total_bytes // page_size
        self._capacity = {
            MemoryKind.OFF_HEAP: int(total_pages * off_heap_fraction),
            MemoryKind.HEAP: total_pages - int(total_pages * off_heap_fraction),
        }
        self._allocated = {MemoryKind.OFF_HEAP: 0, MemoryKind.HEAP: 0}
        self._next_id = 0
        self.peak_pages = 0

    # -- queries ------------------------------------------------------------------
    def pages_for(self, nbytes: float) -> int:
        """Pages needed to hold ``nbytes`` (ceiling division)."""
        if nbytes < 0:
            raise ConfigError(f"negative size: {nbytes}")
        return max(1, -(-int(nbytes) // self.page_size)) if nbytes else 0

    def capacity_pages(self, kind: MemoryKind) -> int:
        """Total pages in the given pool."""
        return self._capacity[kind]

    def available_pages(self, kind: MemoryKind) -> int:
        """Unallocated pages in the given pool."""
        return self._capacity[kind] - self._allocated[kind]

    # -- allocation ---------------------------------------------------------------
    def allocate(self, nbytes: float,
                 kind: MemoryKind = MemoryKind.OFF_HEAP) -> list[MemorySegment]:
        """Allocate enough pages for ``nbytes``; raises when the pool is dry."""
        n = self.pages_for(nbytes)
        if n > self.available_pages(kind):
            raise MemoryExhaustedError(
                f"need {n} {kind.value} pages, only "
                f"{self.available_pages(kind)} available")
        segments = []
        for _ in range(n):
            segments.append(MemorySegment(self._next_id, self.page_size, kind))
            self._next_id += 1
        self._allocated[kind] += n
        used = sum(self._allocated.values())
        self.peak_pages = max(self.peak_pages, used)
        return segments

    def release(self, segments: list[MemorySegment]) -> None:
        """Return pages to their pools."""
        for seg in segments:
            if self._allocated[seg.kind] <= 0:
                raise ConfigError("releasing more pages than were allocated")
            self._allocated[seg.kind] -= 1
