"""TaskManager: per-worker task slots, managed memory and partition store."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.resources import Resource
from repro.common.simclock import Environment, Event, Process
from repro.flink.config import ClusterConfig
from repro.flink.memory import MemoryManager
from repro.flink.partition import Partition


class _SharedSlot:
    """A no-op slot claim for pipelined slot-sharing subtasks.

    Streaming consumers ride their upstream producer's slot (Flink's slot
    sharing groups): a source subtask that holds a slot for the whole read
    also covers the map/GPU subtasks it feeds.  Claiming a second slot per
    pipeline stage would deadlock — the sources would hold every slot while
    the consumers they feed queue for one.
    """

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_SHARED_SLOT = _SharedSlot()


class TaskManager:
    """Executes subtasks in task slots on one worker node.

    One slot per CPU core by default (the paper: "the number of task slots
    allocated by Flink is equal to that of CPUs").  The partition store keeps
    materialized dataset partitions in managed memory between operators and —
    for persisted datasets — between jobs.
    """

    def __init__(self, env: Environment, worker_name: str,
                 config: ClusterConfig):
        self.env = env
        self.worker_name = worker_name
        self.config = config
        self.slots = Resource(env, capacity=config.slots)
        self.memory = MemoryManager(
            total_bytes=config.flink.managed_memory_per_worker,
            page_size=config.flink.page_size)
        # dataset uid -> partition index -> Partition
        self._store: Dict[int, Dict[int, Partition]] = {}
        self.tasks_executed = 0
        # Subtask processes currently assigned to this worker (queued for a
        # slot or running).  A worker kill interrupts them all: the
        # JobManager's retry loop catches the InterruptError and re-places
        # the attempt after failure detection.
        self._running: List[Process] = []
        # Events fired when the last tracked subtask leaves (graceful drain).
        self._quiesce_waiters: List[Event] = []

    # -- slots ----------------------------------------------------------------
    def claim_slot(self, shared: bool = False):
        """A slot claim for one subtask attempt.

        ``shared=True`` (pipelined streaming consumers) returns a no-op
        claim: the subtask shares its producer's slot instead of occupying
        one of its own.  Otherwise a normal FIFO slot request.
        """
        return _SHARED_SLOT if shared else self.slots.request()

    # -- process registry (fault tolerance) -------------------------------------
    def register_running(self, process: Process) -> None:
        """Track a subtask process executing on this worker."""
        self._running.append(process)

    def unregister_running(self, process: Process) -> None:
        """Stop tracking a subtask process (attempt finished or displaced)."""
        try:
            self._running.remove(process)
        except ValueError:
            pass
        if not self._running:
            waiters, self._quiesce_waiters = self._quiesce_waiters, []
            for evt in waiters:
                if not evt.triggered:
                    evt.succeed()

    @property
    def active_subtasks(self) -> int:
        """Subtasks queued for a slot or running here (autoscaler signal)."""
        return len(self._running)

    def quiesced(self) -> Event:
        """An event firing once no subtask is queued or running here.

        A draining worker is excluded from new placements first, then waits
        on this before its state is migrated away — in-flight attempts
        finish normally instead of being interrupted like on a kill.
        """
        evt = Event(self.env)
        if not self._running:
            evt.succeed()
        else:
            self._quiesce_waiters.append(evt)
        return evt

    def fail(self, cause: str = "worker failed") -> None:
        """Kill this TaskManager: interrupt its subtasks, drop its state.

        The partition store is cleared — everything materialized here is
        lost and must be recovered by lineage.  Slot bookkeeping needs no
        special handling: interrupted subtasks release their slot requests
        as the interrupt unwinds their ``with`` blocks.
        """
        victims = list(self._running)
        self._running.clear()
        self._store.clear()
        for process in victims:
            if process.is_alive:
                process.interrupt(cause)
        waiters, self._quiesce_waiters = self._quiesce_waiters, []
        for evt in waiters:
            if not evt.triggered:
                evt.succeed()

    # -- partition store ------------------------------------------------------
    def put_partition(self, dataset_uid: int, partition: Partition) -> None:
        """Register a materialized partition of a dataset on this worker."""
        self._store.setdefault(dataset_uid, {})[partition.index] = partition

    def get_partition(self, dataset_uid: int,
                      index: int) -> Optional[Partition]:
        """Look up a resident partition, or None."""
        return self._store.get(dataset_uid, {}).get(index)

    def remove_partition(self, dataset_uid: int, index: int) -> None:
        """Forget one resident partition (it migrated to another worker)."""
        parts = self._store.get(dataset_uid)
        if parts is not None:
            parts.pop(index, None)
            if not parts:
                self._store.pop(dataset_uid, None)

    def drop_dataset(self, dataset_uid: int) -> None:
        """Evict all partitions of a dataset from this worker."""
        self._store.pop(dataset_uid, None)

    def resident_datasets(self) -> list[int]:
        """Dataset uids with at least one partition on this worker."""
        return [uid for uid, parts in self._store.items() if parts]


class Worker:
    """A cluster node: name + TaskManager (+ GPUManager, attached by GFlink)."""

    def __init__(self, env: Environment, name: str, config: ClusterConfig):
        self.env = env
        self.name = name
        self.taskmanager = TaskManager(env, name, config)
        # The GFlink runtime attaches a repro.core.gpumanager.GPUManager here;
        # the plain Flink substrate leaves it None.
        self.gpumanager = None
        # Failure-domain state: a dead worker stops heartbeating, loses its
        # slots and partitions, and is never scheduled onto again.
        self.alive = True
        self.failed_at: Optional[float] = None
        # Elastic-membership state (repro.flink.runtime.Cluster): a
        # draining worker finishes in-flight subtasks but accepts no new
        # placements; a departed one left gracefully — dead for scheduling,
        # but not a *failure* (its state was migrated, not lost).
        self.draining = False
        self.departed = False

    def fail(self, cause: str = "worker killed") -> None:
        """Kill this node (idempotent).  Use Cluster.fail_worker normally —
        it also fails the co-located HDFS datanode and records metrics."""
        if not self.alive:
            return
        self.alive = False
        self.failed_at = self.env.now
        self.taskmanager.fail(cause)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Worker {self.name}>"
