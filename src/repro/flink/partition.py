"""Partitions: the unit of distributed data.

A partition carries **real elements** (a Python list or NumPy array) used for
functional execution, and **nominal** counts/sizes used by the timing model.
``scale = nominal_count / real_count`` lets a 100 k-element sample stand in
for the paper's 210 M-point dataset: compute and I/O time are charged for the
nominal size while results are computed on the sample (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.errors import ConfigError


def real_len(elements: Any) -> int:
    """Number of real elements in a partition payload (list or ndarray)."""
    if elements is None:
        return 0
    if isinstance(elements, np.ndarray):
        return int(elements.shape[0]) if elements.ndim else 1
    return len(elements)


class Partition:
    """One shard of a DataSet, resident on one worker.

    Attributes
    ----------
    index
        Position of this partition within its dataset.
    elements
        Real payload: list or NumPy array.
    element_nbytes
        Nominal serialized size per element (drives I/O and shuffle time).
    scale
        Nominal elements per real element (>= 0).  ``nominal_count`` and
        ``nominal_nbytes`` are derived.
    worker
        Name of the worker currently holding the partition (None while the
        partition is only a plan-time description).
    """

    __slots__ = ("index", "elements", "element_nbytes", "scale", "worker")

    def __init__(self, index: int, elements: Any, element_nbytes: float,
                 scale: float = 1.0, worker: str | None = None):
        if element_nbytes < 0:
            raise ConfigError(f"element_nbytes must be >= 0: {element_nbytes}")
        if scale < 0:
            raise ConfigError(f"scale must be >= 0: {scale}")
        self.index = index
        self.elements = elements
        self.element_nbytes = float(element_nbytes)
        self.scale = float(scale)
        self.worker = worker

    @property
    def real_count(self) -> int:
        """Number of real (in-memory) elements."""
        return real_len(self.elements)

    @property
    def nominal_count(self) -> float:
        """Element count the timing model charges for."""
        return self.real_count * self.scale

    @property
    def nominal_nbytes(self) -> float:
        """Byte size the timing model charges for."""
        return self.nominal_count * self.element_nbytes

    def derive(self, elements: Any, element_nbytes: float | None = None,
               scale: float | None = None) -> "Partition":
        """A new partition with this one's metadata and new elements."""
        return Partition(
            index=self.index,
            elements=elements,
            element_nbytes=self.element_nbytes
            if element_nbytes is None else element_nbytes,
            scale=self.scale if scale is None else scale,
            worker=self.worker,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Partition {self.index} n={self.real_count} "
                f"(nominal {self.nominal_count:.3g}) on {self.worker}>")


def split_evenly(elements: Sequence[Any] | np.ndarray, n: int,
                 element_nbytes: float, scale: float = 1.0) -> list[Partition]:
    """Split ``elements`` into ``n`` near-equal partitions.

    NumPy arrays are split with views (no copies, per the HPC guide); lists
    are sliced.
    """
    if n < 1:
        raise ConfigError(f"partition count must be >= 1, got {n}")
    total = real_len(elements)
    bounds = [round(i * total / n) for i in range(n + 1)]
    parts = []
    for i in range(n):
        lo, hi = bounds[i], bounds[i + 1]
        parts.append(Partition(index=i, elements=elements[lo:hi],
                               element_nbytes=element_nbytes, scale=scale))
    return parts
