"""Functional execution of user functions over partition payloads.

The *timing* of CPU operators follows Flink's one-element-at-a-time iterator
model (per-element overhead plus per-element FLOPs — see
:meth:`repro.flink.jobmanager.TaskContext.charge_compute`).  The *functional*
result is computed here, preferring a vectorized whole-partition call when the
UDF opts in via :func:`vectorized` — per the HPC guide, NumPy vectorization is
how we make the sample computation cheap without changing the modeled cost.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List

import numpy as np


def vectorized(udf: Callable) -> Callable:
    """Mark ``udf`` as operating on a whole partition payload at once.

    A vectorized map receives the partition's elements (list or ndarray) and
    returns the transformed elements; a vectorized filter returns a boolean
    mask or a filtered payload.
    """
    udf.__repro_vectorized__ = True
    return udf


def is_vectorized(udf: Callable) -> bool:
    """True if ``udf`` was wrapped with :func:`vectorized`."""
    return getattr(udf, "__repro_vectorized__", False)


def _is_empty(elements: Any) -> bool:
    if elements is None:
        return True
    if isinstance(elements, np.ndarray):
        return elements.shape[0] == 0 if elements.ndim else False
    return len(elements) == 0


def apply_map(elements: Any, udf: Callable) -> Any:
    """``map``: one output element per input element."""
    if _is_empty(elements):
        # Normalize missing payloads to []; keep empty ndarrays (dtype).
        return [] if elements is None else elements
    if is_vectorized(udf):
        return udf(elements)
    if isinstance(elements, np.ndarray):
        return np.array([udf(x) for x in elements])
    return [udf(x) for x in elements]


def apply_filter(elements: Any, udf: Callable) -> Any:
    """``filter``: keep elements where the predicate holds."""
    if _is_empty(elements):
        return [] if elements is None else elements
    if is_vectorized(udf):
        result = udf(elements)
        if isinstance(result, np.ndarray) and result.dtype == bool:
            # A boolean mask selects from list payloads too: a vectorized
            # predicate may run over a list (e.g. np.asarray internally)
            # and hand back a mask, which `list[mask]` cannot apply.
            if isinstance(elements, np.ndarray):
                return elements[result]
            return [x for x, keep in zip(elements, result) if keep]
        return result
    if isinstance(elements, np.ndarray):
        mask = np.fromiter((bool(udf(x)) for x in elements),
                           dtype=bool, count=len(elements))
        return elements[mask]
    return [x for x in elements if udf(x)]


def apply_flat_map(elements: Any, udf: Callable) -> List[Any]:
    """``flatMap``: zero or more output elements per input element.

    Always returns a list: a vectorized UDF may hand back an ndarray (or
    None), but flatMap callers ``.extend`` the result and chain stages
    expect list semantics.
    """
    if _is_empty(elements):
        return []
    if is_vectorized(udf):
        out = udf(elements)
        if out is None:
            return []
        return out if isinstance(out, list) else list(out)
    out: List[Any] = []
    for x in elements:
        out.extend(udf(x))
    return out


def apply_reduce(elements: Any, udf: Callable) -> Any:
    """``reduce``: pairwise fold of all elements into one value.

    A vectorized reducer receives the whole payload (group block or
    partition array) and returns the reduced value directly.
    """
    if is_vectorized(udf):
        if _is_empty(elements):
            return None
        return udf(elements)
    iterator = iter(elements)
    try:
        acc = next(iterator)
    except StopIteration:
        return None
    for x in iterator:
        acc = udf(acc, x)
    return acc


def group_elements(elements: Iterable[Any], key_fn: Callable) -> dict:
    """Group elements by ``key_fn`` preserving first-seen key order.

    A vectorized ``key_fn`` over a columnar (ndarray) payload groups in
    bulk — keys still come out in first-seen order and members in original
    order, so results are bit-identical to the element path; group values
    are ndarray blocks instead of lists.
    """
    if is_vectorized(key_fn) and isinstance(elements, np.ndarray):
        from repro.flink.columnar import group_columnar, vector_keys
        keys = vector_keys(key_fn, elements)
        if keys is not None:
            return group_columnar(elements, keys)
        # Non-integral keys: fall through to the row loop, evaluating the
        # vectorized extractor once and pairing keys with rows.
        all_keys = np.asarray(key_fn(elements))
        groups: dict = {}
        for k, x in zip(all_keys, elements):
            groups.setdefault(k.item() if hasattr(k, "item") else k,
                              []).append(x)
        return groups
    groups = {}
    for x in elements:
        groups.setdefault(key_fn(x), []).append(x)
    return groups


def apply_grouped_reduce(elements: Any, key_fn: Callable,
                         reduce_fn: Callable) -> Any:
    """Group-by-key then reduce each group (keyed reduce / pre-combine).

    When the payload is columnar and both functions are vectorized, the
    reduced rows are stacked back into a columnar block so the zero-copy
    path continues downstream; otherwise the classic row list is returned.
    """
    if _is_empty(elements):
        return [] if elements is None else elements
    groups = group_elements(elements, key_fn)
    out = [apply_reduce(members, reduce_fn) for members in groups.values()]
    if (isinstance(elements, np.ndarray)
            and is_vectorized(key_fn) and is_vectorized(reduce_fn)):
        from repro.flink.columnar import maybe_stack
        return maybe_stack(out)
    return out
