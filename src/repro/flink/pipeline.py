"""Streaming block-pipelined executor (``FlinkConfig.executor="pipelined"``).

The staged executor in :mod:`repro.flink.jobmanager` runs one operator wave
at a time with a full barrier in between, so an HDFS read, the CPU parse,
the H2D upload and the kernel of one dataset never overlap.  This module
replaces the barrier with per-partition **block streams**: every operator
becomes a producer/consumer node over a bounded queue of blocks, so block
*k* can be in a kernel while block *k+1* is mid-H2D and block *k+2* is
still on disk — all on the simulated clock (docs/STREAMING_EXECUTOR.md).

Two planes, one result
    The *data plane* (functional values) is evaluated eagerly: block
    metadata carries its payload, and UDFs are pure, so every partition's
    value is known the moment its inputs' values are.  The *timing plane*
    (disk, serde, CPU, PCIe charges) streams block-by-block.  Because every
    per-block cost in the engine is linear, the block-split charges sum to
    exactly the staged charges — job results are bit-identical between
    executors, only the clock differs.

Pipeline regions
    Streaming applies along forward/union edges only
    (:attr:`~repro.flink.plan.ShipStrategy.is_streaming`).  An operator
    with any hash/gather/broadcast/rebalance input is a *barrier* consumer:
    it waits for all its producers' final partitions, then runs the same
    :class:`~repro.flink.shuffle.Exchange` the staged executor runs.

Slot sharing
    Streaming consumers ride their producer's task slot
    (:meth:`TaskManager.claim_slot` with ``shared=True``) — otherwise
    sources holding every slot for the duration of the read would deadlock
    the consumers they feed.  Sources, collection sources and barrier
    consumers claim slots normally; barrier consumers only *after* their
    inputs completed, so a queued slot request never waits on work behind
    it in the pipeline.
"""

from __future__ import annotations

import math

from bisect import bisect_right
from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.common.simclock import Environment, Event
from repro.flink.graph import ExecutionGraph, ExecutionJobVertex
from repro.flink.partition import Partition, split_evenly
from repro.flink.plan import (
    CollectionSource,
    HdfsSink,
    HdfsSource,
    Operator,
    ShipStrategy,
    _ElementWise,
)
from repro.flink.shuffle import Exchange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.fault import FailureInjector
    from repro.flink.jobmanager import JobManager, JobMetrics
    from repro.flink.scheduler import Scheduler


class BlockStream:
    """A bounded, block-granular availability channel for one partition.

    The producer publishes block indices as their bytes become
    host-resident; consumers wait on byte/block thresholds and acknowledge
    consumption, returning queue credits to the producer.  All transitions
    are monotonic and idempotent, so a retried task attempt can replay its
    publishes/acks without corrupting the channel.

    Backpressure: :meth:`reserve` blocks the producer once it runs
    ``capacity`` blocks ahead of the slowest subscriber's cursor.  One
    exception keeps arbitrary consumption granularities deadlock-free: if a
    consumer is *currently waiting* for bytes beyond the cap (e.g. a GPU
    stream assembling one 8 MB device block out of many small HDFS blocks),
    the producer may run ahead exactly far enough to satisfy that demand.
    """

    def __init__(self, env: Environment, block_nbytes: List[float],
                 capacity: int, n_subscribers: int):
        self.env = env
        self.block_nbytes = [max(0.0, float(b)) for b in block_nbytes]
        self._cum = [0.0]
        for b in self.block_nbytes:
            self._cum.append(self._cum[-1] + b)
        self.total_nbytes = self._cum[-1]
        self.capacity = max(1, int(capacity))
        self.published = 0
        self.closed = False
        self._cursors = [0] * max(0, int(n_subscribers))
        self._avail: List[Tuple[float, Event]] = []
        self._credit: List[Tuple[int, Event]] = []
        # Stats surfaced via trace spans and the metrics registry.
        self.max_depth = 0
        self.stall_count = 0
        self.stall_seconds = 0.0
        # H2D starvation (consumer ready before host bytes): incremented by
        # the GPU pipeline (repro.core.gstream) on its host stream.
        self.starved_count = 0
        self.starved_seconds = 0.0

    # -- state ----------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self.block_nbytes)

    @property
    def published_nbytes(self) -> float:
        return self._cum[self.published]

    def _min_cursor(self) -> int:
        return min(self._cursors) if self._cursors else self.published

    @property
    def depth(self) -> int:
        """Blocks published but not yet consumed by the slowest subscriber."""
        return self.published - self._min_cursor()

    def _eps(self) -> float:
        return 1e-9 * max(1.0, self.total_nbytes)

    def _demand_nbytes(self) -> float:
        return max((t for t, _ in self._avail), default=0.0)

    def _may_publish(self, block_index: int) -> bool:
        if self.closed or block_index < self.published or not self._cursors:
            return True
        if block_index < self._min_cursor() + self.capacity:
            return True
        # Demand override: a waiting consumer needs bytes this block holds.
        return self._cum[block_index] < self._demand_nbytes() - self._eps()

    # -- producer side ---------------------------------------------------------
    def reserve(self, block_index: int) -> Event:
        """Event firing once the bounded queue has room for ``block_index``."""
        evt = Event(self.env)
        if self._may_publish(block_index):
            evt.succeed()
        else:
            self._credit.append((block_index, evt))
        return evt

    def publish(self, block_index: int) -> None:
        """Mark blocks up to ``block_index`` (inclusive) host-resident."""
        if block_index < self.published:
            return  # a retried attempt replaying earlier blocks
        self.published = min(block_index + 1, self.n_blocks)
        self.max_depth = max(self.max_depth, self.depth)
        self._wake()

    def close(self) -> None:
        """Producer finished: resolve every waiter unconditionally."""
        if self.closed:
            return
        self.closed = True
        self._wake()

    # -- consumer side ---------------------------------------------------------
    def subscribe(self) -> int:
        """Register one more consumer; returns its cursor slot."""
        self._cursors.append(0)
        return len(self._cursors) - 1

    def when_nbytes(self, nbytes: float) -> Event:
        """Event firing once ``nbytes`` (clamped to the total) are published."""
        evt = Event(self.env)
        threshold = min(float(nbytes), self.total_nbytes)
        if self.closed or self.published_nbytes >= threshold - self._eps():
            evt.succeed()
        else:
            self._avail.append((threshold, evt))
            self._wake_credits()  # new demand may unblock the producer
        return evt

    def when_fraction(self, fraction: float) -> Event:
        """Event firing once ``fraction`` of the total bytes are published."""
        return self.when_nbytes(min(1.0, max(0.0, fraction))
                                * self.total_nbytes)

    def when_blocks(self, count: int) -> Event:
        """Event firing once the first ``count`` blocks are published."""
        return self.when_nbytes(self._cum[min(max(0, count), self.n_blocks)])

    def cum_nbytes(self, count: int) -> float:
        """Total bytes of the first ``count`` blocks."""
        return self._cum[min(max(0, count), self.n_blocks)]

    def ack(self, slot: Optional[int], blocks_done: int) -> None:
        """Advance subscriber ``slot``'s cursor to ``blocks_done`` blocks."""
        if slot is None or not (0 <= slot < len(self._cursors)):
            return
        done = min(max(0, blocks_done), self.n_blocks)
        if done > self._cursors[slot]:
            self._cursors[slot] = done
            self._wake_credits()

    def ack_nbytes(self, slot: Optional[int], nbytes: float) -> None:
        """Acknowledge every block fully covered by the first ``nbytes``."""
        self.ack(slot, bisect_right(self._cum, float(nbytes) + self._eps())
                 - 1)

    def ack_all(self, slot: Optional[int]) -> None:
        self.ack(slot, self.n_blocks)

    # -- waiter bookkeeping ------------------------------------------------------
    def _wake(self) -> None:
        if self._avail:
            still = []
            for threshold, evt in self._avail:
                if (self.closed
                        or self.published_nbytes >= threshold - self._eps()):
                    evt.succeed()
                else:
                    still.append((threshold, evt))
            self._avail = still
        self._wake_credits()

    def _wake_credits(self) -> None:
        if not self._credit:
            return
        still = []
        for block_index, evt in self._credit:
            if self._may_publish(block_index):
                evt.succeed()
            else:
                still.append((block_index, evt))
        self._credit = still


def _fired(env: Environment, value: Any) -> Event:
    evt = Event(env)
    evt.succeed(value)
    return evt


def _split_chunks(block_nbytes: List[float],
                  chunk_nbytes: float) -> List[float]:
    """Split each block's byte count into equal chunks of at most
    ``chunk_nbytes`` (every block yields at least one chunk, so block
    boundaries always coincide with chunk boundaries)."""
    plan: List[float] = []
    for nbytes in block_nbytes:
        n = max(1, math.ceil(nbytes / max(1.0, chunk_nbytes)))
        prev = 0.0
        for j in range(1, n + 1):
            cum = nbytes * j / n
            plan.append(cum - prev)
            prev = cum
    return plan


class PipelinedExecutor:
    """Runs one job's execution graph as a streaming block pipeline.

    Per operator partition it keeps two events — a *shell* (fires as soon
    as the partition's functional value and home worker are known, possibly
    long before its timing completes) and a *final* (fires when the
    producing subtask returns) — plus an optional :class:`BlockStream`
    carrying block-level availability.  Streaming consumers start at the
    shell and gate their charges on the stream; barrier consumers wait for
    finals and reuse the staged Exchange machinery unchanged.
    """

    def __init__(self, jm: "JobManager", graph: ExecutionGraph,
                 scheduler: "Scheduler", metrics: "JobMetrics",
                 injector: Optional["FailureInjector"]):
        self.jm = jm
        self.cluster = jm.cluster
        self.env: Environment = jm.env
        self.config = jm.config
        self.graph = graph
        self.scheduler = scheduler
        self.metrics = metrics
        self.injector = injector
        self.obs = self.cluster.obs
        self.tracer = self.obs.tracer
        self._shells: Dict[int, List[Event]] = {}
        self._finals: Dict[int, List[Event]] = {}
        self._streams: Dict[int, List[Optional[BlockStream]]] = {}
        self._consumer_slot: Dict[Tuple[int, int], int] = {}
        self._n_subs: Dict[int, int] = {}
        self._emits: Dict[int, bool] = {}
        self._op_start: Dict[int, Optional[float]] = {}
        self._region_of: Dict[int, int] = {}
        # Serializes lineage recoveries triggered by concurrent barrier
        # consumers (the recovery path itself is the staged machinery).
        self._recovering: Optional[Event] = None

    # -- static wiring ----------------------------------------------------------
    def _streaming_mode(self, op: Operator) -> bool:
        """True when every input edge of ``op`` streams (and shapes line up)."""
        if not op.inputs or not op.strategies:
            return False
        if not all(s.is_streaming for s in op.strategies):
            return False
        jv = self.graph.job_vertex(op)
        for inp, strat in zip(op.inputs, op.strategies):
            p = len(self._shells[inp.uid])
            if strat is ShipStrategy.FORWARD and p != jv.parallelism:
                return False  # staged would reject this too — same path
        return True

    def _source_index(self, op: Operator, input_idx: int, subtask: int
                      ) -> Optional[int]:
        """Producer partition feeding input ``input_idx`` of subtask ``i``."""
        strat = op.strategies[input_idx]
        if strat is ShipStrategy.FORWARD:
            return subtask
        p = len(self._shells[op.inputs[input_idx].uid])
        if strat is ShipStrategy.UNION_LEFT:
            return subtask if subtask < p else None
        offset = self.graph.job_vertex(op).parallelism - p
        return subtask - offset if subtask >= offset else None

    def _wire(self, fresh: List[Operator]) -> None:
        for op in fresh:
            jv = self.graph.job_vertex(op)
            self._shells[op.uid] = [Event(self.env)
                                    for _ in range(jv.parallelism)]
            self._finals[op.uid] = [Event(self.env)
                                    for _ in range(jv.parallelism)]
            self._streams[op.uid] = [None] * jv.parallelism
            self._op_start[op.uid] = None
        for op in fresh:
            if self._streaming_mode(op):
                for k in range(len(op.inputs)):
                    uid = op.inputs[k].uid
                    slot = self._n_subs.get(uid, 0)
                    self._consumer_slot[(op.uid, k)] = slot
                    self._n_subs[uid] = slot + 1
        # An operator emits a block stream when it can publish progressively
        # (sources generate blocks; element-wise ops relay their input's
        # stream) and someone downstream streams from it.
        for op in fresh:
            emits = False
            if self._n_subs.get(op.uid, 0) > 0:
                if isinstance(op, HdfsSource):
                    emits = True
                elif (isinstance(op, _ElementWise)
                        and self._streaming_mode(op)
                        and self._emits.get(op.inputs[0].uid, False)):
                    emits = True
            self._emits[op.uid] = emits
        for r, region in enumerate(self.graph.pipeline_regions()):
            for op in region:
                self._region_of[op.uid] = r

    # -- entry point -------------------------------------------------------------
    def run(self) -> Generator[Event, None, None]:
        """Simulation process executing the whole graph concurrently."""
        fresh: List[Operator] = []
        for op in self.graph.order:
            if op.uid in self.cluster.materialized:
                # Persisted from an earlier job: recover lost partitions on
                # the staged machinery (serially, before the pipeline), then
                # expose the dataset as already-final.
                yield from self.jm._recover_dataset(
                    op, self.graph, self.scheduler, self.metrics,
                    self.injector)
                parts = self.cluster.materialized[op.uid]
                self._shells[op.uid] = [_fired(self.env, p) for p in parts]
                self._finals[op.uid] = [_fired(self.env, p) for p in parts]
                self._streams[op.uid] = [None] * len(parts)
            else:
                fresh.append(op)
        self._wire(fresh)
        procs = [self.env.process(self._run_op(op),
                                  name=f"pipeline:{op.name}")
                 for op in fresh]
        if procs:
            yield self.env.all_of(procs)
        for op in fresh:
            self.metrics.materialized_uids.add(op.uid)

    # -- per-operator runner -------------------------------------------------------
    def _run_op(self, op: Operator) -> Generator[Event, None, None]:
        uid = op.uid
        jv = self.graph.job_vertex(op)
        if isinstance(op, HdfsSink):
            self.cluster.hdfs.namenode.create_file(op.path)
        if isinstance(op, HdfsSource):
            procs = self._start_source(op, jv)
        elif isinstance(op, CollectionSource):
            procs = self._start_collection(op, jv)
        elif self._streaming_mode(op):
            procs = [self.env.process(self._streaming_slice(op, jv, i),
                                      name=f"{op.name}[{i}]")
                     for i in range(jv.parallelism)]
        else:
            procs = yield from self._start_barrier(op, jv)
        results = yield self.env.all_of(procs)
        outputs = sorted(results.values(), key=lambda p: p.index)

        from repro.flink.jobmanager import OperatorSpan
        end = self.env.now
        start = self._op_start[uid] if self._op_start[uid] is not None \
            else end
        self.metrics.operator_spans[uid] = OperatorSpan(
            name=op.name, parallelism=jv.parallelism, start=start, end=end)
        self.metrics.subtasks += len(procs)
        self.tracer.complete(
            f"op:{op.name}", "operator",
            self.tracer.track(self.cluster.master_name, f"op:{op.name}"),
            start=start, end=end, op=op.name, parallelism=jv.parallelism,
            region=self._region_of.get(uid, -1))

        self.cluster.materialized[uid] = outputs
        for part in outputs:
            worker = self.cluster.workers.get(part.worker)
            if worker is not None:
                worker.taskmanager.put_partition(uid, part)
        self.scheduler.release(jv)
        self._publish_queue_stats(op)

    def _publish_queue_stats(self, op: Operator) -> None:
        streams = [s for s in self._streams.get(op.uid, []) if s is not None]
        if not streams:
            return
        reg = self.obs.registry
        max_depth = max(s.max_depth for s in streams)
        reg.counter("pipeline.queue.max_depth", op=op.name).inc(max_depth)
        stalls = sum(s.stall_count for s in streams)
        if stalls:
            reg.counter("pipeline.backpressure.blocks", op=op.name).inc(
                stalls)
        starved = sum(s.starved_count for s in streams)
        self.metrics.pipeline_max_queue_depth = max(
            self.metrics.pipeline_max_queue_depth, max_depth)
        self.metrics.pipeline_h2d_starved += starved
        monitor = self.obs.monitor
        if monitor.enabled:
            # Distinct name from the registry's pipeline.queue.max_depth
            # counter: that one is sampled into the store as a counter
            # series, this is the live per-close gauge.
            monitor.gauge("pipeline.queue.depth", max_depth, op=op.name)

    # -- operator modes ----------------------------------------------------------
    def _start_source(self, op: HdfsSource, jv: ExecutionJobVertex) -> list:
        self.scheduler.schedule_source(jv, self.cluster.hdfs)
        procs = []
        for i in range(jv.parallelism):
            vertex = jv.subtasks[i]
            shell = op.peek_output(vertex.assigned_blocks, i, vertex.worker)
            stream = None
            if self._emits[op.uid]:
                # Sub-block plan: each HDFS block split into pipeline-sized
                # chunks (the streaming read publishes these as the disk
                # transfer progresses — an unsplit 128 MB block would give
                # the pipeline nothing to overlap on small inputs).
                plan = _split_chunks(
                    [b.nbytes for b in vertex.assigned_blocks],
                    self.cluster.tuning.pipeline_block_nbytes)
                stream = BlockStream(
                    self.env, plan,
                    self.cluster.tuning.pipeline_queue_blocks,
                    self._n_subs.get(op.uid, 0))
                self._streams[op.uid][i] = stream
            self._shells[op.uid][i].succeed(shell)
            procs.append(self.env.process(
                self._slice(op, jv, i, [], None, needs_slot=True,
                            out_stream=stream),
                name=f"{op.name}[{i}]"))
        return procs

    def _start_collection(self, op: CollectionSource,
                          jv: ExecutionJobVertex) -> list:
        parts = split_evenly(op.elements, jv.parallelism,
                             op.element_nbytes, op.scale)
        self.scheduler.schedule_collection_source(jv, parts)
        return [self.env.process(
                    self._slice(op, jv, i, [], parts[i], needs_slot=True),
                    name=f"{op.name}[{i}]")
                for i in range(jv.parallelism)]

    def _start_barrier(self, op: Operator, jv: ExecutionJobVertex
                       ) -> Generator[Event, None, list]:
        """Wait for all input finals, run staged exchanges, spawn subtasks."""
        producer_parts: List[List[Partition]] = []
        for inp in op.inputs:
            parts = []
            for evt in self._finals[inp.uid]:
                parts.append((yield evt))
            producer_parts.append(sorted(parts, key=lambda p: p.index))
        # A worker may have died between an input completing and this
        # barrier consuming it — recover lost partitions first, exactly as
        # the staged executor does before each exchange.
        for idx, inp in enumerate(op.inputs):
            if any(not self.cluster.worker_is_alive(p.worker)
                   for p in producer_parts[idx]):
                yield from self._recover_serialized(inp)
                producer_parts[idx] = sorted(
                    self.cluster.materialized[inp.uid],
                    key=lambda p: p.index)

        per_subtask_inputs: List[List[Partition]] = [
            [] for _ in range(jv.parallelism)]
        self.scheduler.schedule_consumer(jv, self.graph, producer_parts)
        consumer_workers = [v.worker for v in jv.subtasks]
        ex_track = self.tracer.track(self.cluster.master_name, "exchange")
        for k, (inp, strat) in enumerate(zip(op.inputs, op.strategies)):
            exchange = Exchange(
                self.env, self.cluster.network, self.cluster.serializer,
                strat, producer_parts[k], jv.parallelism, consumer_workers,
                key_fn=op.key_fn_for_input(k),
                combiner=op.combiner_for_input(k),
                hdfs=self.cluster.hdfs, flink=self.cluster.config.flink)
            with self.tracer.span(f"exchange:{op.name}", "shuffle", ex_track,
                                  op=op.name, input=k,
                                  strategy=strat.name) as sp:
                result = yield self.env.process(
                    exchange.run(), name=f"exchange-{op.name}-{k}")
                sp.set(bytes=result.bytes_shuffled,
                       zero_copy=result.bytes_zero_copy)
            self.metrics.shuffle_bytes += result.bytes_shuffled
            self.metrics.shuffle_zero_copy_bytes += result.bytes_zero_copy
            self.metrics.shuffle_spill_bytes += result.bytes_spilled
            for j, part in enumerate(result.inputs):
                per_subtask_inputs[j].append(part)
        return [self.env.process(
                    self._slice(op, jv, i, per_subtask_inputs[i], None,
                                needs_slot=True),
                    name=f"{op.name}[{i}]")
                for i in range(jv.parallelism)]

    def _recover_serialized(self, op: Operator
                            ) -> Generator[Event, None, None]:
        """Run a lineage recovery, one at a time across runner processes."""
        while self._recovering is not None:
            yield self._recovering
        self._recovering = Event(self.env)
        try:
            yield from self.jm._recover_dataset(
                op, self.graph, self.scheduler, self.metrics, self.injector)
        finally:
            done, self._recovering = self._recovering, None
            done.succeed()

    def _streaming_slice(self, op: Operator, jv: ExecutionJobVertex,
                         i: int) -> Generator[Event, None, Partition]:
        """One streaming consumer subtask: wait shells, colocate, run."""
        uid = op.uid
        collected: List[Optional[Partition]] = []
        in_stream: Optional[BlockStream] = None
        in_slot: Optional[int] = None
        colocate: Optional[str] = None
        for k in range(len(op.inputs)):
            src = self._source_index(op, k, i)
            if src is None:
                collected.append(None)  # the other side of a union
                continue
            inp_uid = op.inputs[k].uid
            part = yield self._shells[inp_uid][src]
            stream = self._streams[inp_uid][src]
            if stream is not None:
                if in_stream is None:
                    in_stream = stream
                    in_slot = self._consumer_slot[(uid, k)]
            else:
                # No stream: the producer's timing completes all at once —
                # this consumer may only proceed from its final.
                part = yield self._finals[inp_uid][src]
            collected.append(part)
            if colocate is None:
                colocate = part.worker
        vertex = jv.subtasks[i]
        self.scheduler.schedule_subtask(vertex, colocate)

        # Mirror the staged Exchange's forward/union reindexing.  Placement
        # differs from the producer's home only when that worker died
        # (health fallback), in which case the producer's own retry is
        # already re-shipping the data — no extra transfer is charged here.
        inputs: List[Optional[Partition]] = []
        for part in collected:
            if part is None:
                inputs.append(None)
                continue
            moved = part.derive(part.elements)
            moved.index = i
            moved.worker = vertex.worker
            inputs.append(moved)

        out_stream: Optional[BlockStream] = None
        if self._emits[uid] and in_stream is not None:
            primary = next(p for p in inputs if p is not None)
            shell = op.functional_output(primary, i, vertex.worker)
            ratio = (shell.nominal_nbytes / in_stream.total_nbytes
                     if in_stream.total_nbytes > 0 else 0.0)
            out_stream = BlockStream(
                self.env, [b * ratio for b in in_stream.block_nbytes],
                self.cluster.tuning.pipeline_queue_blocks,
                self._n_subs.get(uid, 0))
            self._streams[uid][i] = out_stream
            self._shells[uid][i].succeed(shell)

        # Slot sharing applies only to a consumer that actually rides a
        # producer's stream (the producer holds the slot for the duration).
        # A final-gated consumer (e.g. downstream of a collection source)
        # starts after its producer released its slot, so it must claim
        # one of its own — otherwise slot contention would vanish.
        return (yield from self._slice(
            op, jv, i, inputs, None, needs_slot=in_stream is None,
            in_stream=in_stream, in_slot=in_slot, out_stream=out_stream))

    # -- subtask wrapper -----------------------------------------------------------
    def _slice(self, op: Operator, jv: ExecutionJobVertex, i: int,
               inputs: List[Optional[Partition]],
               preassigned: Optional[Partition], needs_slot: bool,
               in_stream: Optional[BlockStream] = None,
               in_slot: Optional[int] = None,
               out_stream: Optional[BlockStream] = None
               ) -> Generator[Event, None, Partition]:
        if self._op_start[op.uid] is None:
            self._op_start[op.uid] = self.env.now
        part = yield from self.jm._run_subtask(
            jv.subtasks[i], inputs, preassigned, jv.parallelism,
            self.metrics, self.injector, self.scheduler,
            needs_slot=needs_slot, in_stream=in_stream, in_slot=in_slot,
            out_stream=out_stream)
        if not self._shells[op.uid][i].triggered:
            self._shells[op.uid][i].succeed(part)
        self._finals[op.uid][i].succeed(part)
        return part
