"""Columnar (zero-copy) payload helpers for exchanges and block operators.

A *columnar* partition payload is a NumPy array (1-D primitive column,
2-D row-block, or structured/GStruct record array).  Columnar payloads can
be routed, sliced and concatenated as contiguous byte regions, which is
what lets the exchange ship them without per-row serde: the wire carries
the SoA regions verbatim plus a fixed-cost descriptor per block
(``FlinkConfig.shuffle_block_header_s``).  Row payloads (Python lists)
always take the classic per-record serde path.

Serde is charged only at the columnar↔row boundary: :func:`rows_to_columnar`
and :func:`columnar_to_rows` are where an engine would pay object
materialization, and callers charge ``Serializer`` time there.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np


def is_columnar(elements: Any) -> bool:
    """True if ``elements`` is a payload the zero-copy path can carry."""
    return isinstance(elements, np.ndarray) and elements.ndim >= 1


def columnar_compatible(elements: Any) -> bool:
    """True if ``elements`` is columnar or trivially empty.

    Empty list payloads (e.g. a producer that emitted nothing) do not force
    an exchange back onto the row path.
    """
    if is_columnar(elements):
        return True
    return isinstance(elements, (list, tuple)) and len(elements) == 0


def soa_regions(elements: np.ndarray) -> List[int]:
    """Byte sizes of the SoA regions of a columnar payload.

    A structured (GStruct) array ships one contiguous region per field —
    the SoA layout of :meth:`repro.core.gstruct.GStruct.to_soa` — while a
    plain numeric array is a single region.  Region count feeds the
    per-block descriptor charge; total bytes are unchanged either way.
    """
    n = int(elements.shape[0]) if elements.ndim else 1
    if elements.dtype.names:
        return [n * elements.dtype[name].itemsize
                for name in elements.dtype.names]
    return [int(elements.nbytes)]


def n_wire_blocks(nbytes: float, block_nbytes: float,
                  n_regions: int = 1) -> int:
    """Number of framed wire blocks for a payload of ``nbytes``.

    The exchange partitions each destination payload into pipeline-sized
    blocks (``FlinkConfig.pipeline_block_nbytes``); each SoA region is
    framed separately, so a GStruct payload pays one descriptor per field
    per block.
    """
    if nbytes <= 0:
        return max(1, n_regions)
    return max(1, math.ceil(nbytes / block_nbytes)) * max(1, n_regions)


def columnar_take(elements: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Select rows by boolean mask or integer index array (one copy)."""
    return elements[index]


def columnar_concat(parts: Sequence[np.ndarray]) -> Any:
    """Concatenate columnar buckets into one merged payload.

    Returns ``[]`` when every bucket is empty so a consumer that received
    nothing sees the same payload as on the row path.
    """
    chunks = [p for p in parts if is_columnar(p) and p.shape[0] > 0]
    if not chunks:
        return []
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks, axis=0)


def maybe_stack(rows: List[Any]) -> Any:
    """Stack reduced rows back into a columnar payload when possible.

    Keyed-reduce outputs are per-group rows; if they are homogeneous
    ndarrays they stack into a 2-D (or structured) block so the columnar
    path continues downstream.  Heterogeneous outputs stay a row list.
    """
    if not rows:
        return rows
    first = rows[0]
    if not isinstance(first, np.ndarray):
        return rows
    shape, dtype = first.shape, first.dtype
    for r in rows[1:]:
        if (not isinstance(r, np.ndarray) or r.shape != shape
                or r.dtype != dtype):
            return rows
    return np.stack(rows, axis=0)


def rows_to_columnar(rows: Iterable[Any]) -> Any:
    """Row→columnar boundary: materialize rows into a NumPy block.

    Callers charge serde for the conversion; this helper only performs it.
    """
    rows = list(rows)
    return np.asarray(rows) if rows else []


def columnar_to_rows(elements: Any) -> List[Any]:
    """Columnar→row boundary: materialize Python rows from a block.

    Callers charge serde for the conversion; this helper only performs it.
    """
    if isinstance(elements, np.ndarray):
        return list(elements)
    return list(elements) if elements is not None else []


def vector_keys(key_fn, elements: np.ndarray) -> Optional[np.ndarray]:
    """Evaluate a vectorized key extractor over a columnar payload.

    Returns an integer key array, or ``None`` when the keys are not
    integral (the exchange then falls back to per-row routing, whose FNV
    hash has no vectorized equivalent).
    """
    keys = np.asarray(key_fn(elements))
    if keys.ndim != 1 or keys.shape[0] != elements.shape[0]:
        return None
    if keys.dtype.kind not in ("i", "u"):
        return None
    return keys


def group_columnar(elements: np.ndarray, keys: np.ndarray) -> dict:
    """Group a columnar payload by an integer key column.

    Matches :func:`repro.flink.iterators.group_elements` exactly: keys in
    first-seen order, members in original order — so grouped-reduce results
    are bit-identical to the element path.
    """
    if elements.shape[0] == 0:
        return {}
    uniq, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True)
    order = np.argsort(first_idx, kind="stable")  # group ids, first-seen
    sort_idx = np.argsort(inverse, kind="stable")
    counts = np.bincount(inverse, minlength=len(uniq))
    starts = np.concatenate(([0], np.cumsum(counts)))
    groups: dict = {}
    for g in order:
        members = sort_idx[starts[g]:starts[g + 1]]
        groups[uniq[g].item()] = elements[members]
    return groups
