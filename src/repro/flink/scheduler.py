"""Slot scheduler: assigns subtasks to workers with locality preferences.

Placement rules (matching Flink's behavior closely enough for the paper's
experiments):

* HDFS sources — blocks are dealt round-robin to subtasks; a subtask runs on
  a worker holding a replica of its first block when possible (input
  locality), otherwise on the least-loaded worker.
* FORWARD consumers — co-located with their input partition (chaining
  locality: no network on the forward edge).
* Shuffle/gather/broadcast consumers — spread round-robin by load.

Fault tolerance: every placement decision consults the cluster's worker
``health`` predicate, so nothing is ever scheduled onto a dead node, and
:meth:`Scheduler.reschedule` re-places a *retried* attempt — a retry is not
pinned to the worker that just failed it, it escapes to the least-loaded
healthy node (avoiding, when possible, the workers in ``avoid``).

The scheduler only picks *placement*; slot *contention* is enforced at run
time by each TaskManager's slot resource.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.common.errors import JobExecutionError
from repro.flink.graph import ExecutionGraph, ExecutionJobVertex, \
    ExecutionVertex
from repro.flink.plan import HdfsSource, ShipStrategy
from repro.flink.partition import Partition
from repro.hdfs.filesystem import HDFS


class Scheduler:
    """Fills in worker assignments for an execution graph, operator by operator."""

    def __init__(self, worker_names, tracer=None,
                 health: Optional[Callable[[str], bool]] = None,
                 monitor=None, tuning=None):
        # Either a static name list or a live-membership callable
        # (Cluster.member_names): elastic joiners become placement
        # candidates the moment they register, mid-job included.
        if callable(worker_names):
            self._names_fn: Callable[[], List[str]] = worker_names
        else:
            static = list(worker_names)
            self._names_fn = lambda: static
        self._load: Dict[str, int] = {w: 0 for w in self._names_fn()}
        # Optional repro.obs.trace.Tracer: placement decisions become
        # "place" instants on the master's scheduler lane.
        self.tracer = tracer
        # Health predicate (Cluster.worker_is_schedulable); None = all
        # healthy.  Dead *and draining* workers take no new placements.
        self._health = health
        # Optional repro.obs.monitor.GMonitor: per-worker queue depth and
        # placement counts become live series.
        self.monitor = monitor
        # Optional repro.flink.config.RuntimeTuning: the autoscaler's
        # prefer-cache bias reads through this.
        self.tuning = tuning
        # Fault recency per worker (monotone sequence numbers): the
        # deterministic tie-breaker when every healthy worker is in a
        # reschedule's avoid set.
        self._last_fault: Dict[str, int] = {}
        self._fault_seq = 0

    @property
    def worker_names(self) -> List[str]:
        """Current placement candidates (live membership when elastic)."""
        names = self._names_fn()
        for w in names:
            if w not in self._load:
                self._load[w] = 0
        return names

    def _feed_monitor(self, worker: str, reason: str) -> None:
        if self.monitor is None or not self.monitor.enabled:
            return
        self.monitor.count("sched.placements", 1, reason=reason)
        self.monitor.gauge("sched.queue_depth", self._load[worker],
                           worker=worker)

    # -- helpers ---------------------------------------------------------------
    def _is_healthy(self, worker: str) -> bool:
        return self._health is None or self._health(worker)

    def _healthy_names(self) -> List[str]:
        names = [w for w in self.worker_names if self._is_healthy(w)]
        if not names:
            raise JobExecutionError("no healthy workers left in the cluster")
        return names

    # -- fault recency (reschedule fallback) -----------------------------------
    def note_fault(self, worker: str) -> None:
        """Record that ``worker`` just failed an attempt (or died)."""
        self._fault_seq += 1
        self._last_fault[worker] = self._fault_seq

    def all_avoided(self, avoid: Iterable[str]) -> bool:
        """True when every healthy worker is in ``avoid`` — the caller
        should wait a back-off before falling back (see ``reschedule``)."""
        avoid = set(avoid)
        names = [w for w in self.worker_names if self._is_healthy(w)]
        return bool(names) and all(w in avoid for w in names)

    def _least_loaded(self) -> str:
        return min(self._healthy_names(), key=lambda w: (self._load[w], w))

    def _assign(self, worker: str) -> str:
        self._load[worker] += 1
        return worker

    def _trace_place(self, op_name: str, subtask: int, worker: str,
                     reason: str) -> None:
        self._feed_monitor(worker, reason)
        if self.tracer is None or not self.tracer.enabled:
            return
        self.tracer.instant(
            "place", "schedule", self.tracer.track("master", "scheduler"),
            op=op_name, subtask=subtask, worker=worker, reason=reason)

    # -- per-operator scheduling ---------------------------------------------------
    def schedule_source(self, jv: ExecutionJobVertex, hdfs: HDFS) -> None:
        """Assign HDFS blocks and workers to a source's subtasks."""
        op = jv.op
        assert isinstance(op, HdfsSource)
        blocks = hdfs.locate(op.path)
        # Contiguous ranges (like FileInputFormat splits), so that gathering
        # partitions in subtask order preserves the file's element order —
        # positional workloads (SpMV rows) depend on this.
        n = jv.parallelism
        bounds = [round(i * len(blocks) / n) for i in range(n + 1)]
        for i in range(n):
            jv.subtasks[i].assigned_blocks.extend(blocks[bounds[i]:bounds[i + 1]])
        for vertex in jv.subtasks:
            local_candidates = [
                w for w in self.worker_names
                if self._is_healthy(w)
                and vertex.assigned_blocks
                and vertex.assigned_blocks[0].is_local_to(w)
            ]
            worker = self._least_loaded()
            reason = "spread"
            if local_candidates:
                best_local = min(local_candidates,
                                 key=lambda w: self._load[w])
                # Prefer locality, but never at the cost of a second task
                # wave: if every local replica host is busier than the
                # least-loaded worker, spread instead (a remote HDFS read is
                # cheaper than queueing behind a slot).  Under the
                # autoscaler's prefer-cache bias (pcie_bound) locality wins
                # unconditionally — keeping GPU work next to its cached
                # input beats avoiding a slot queue.
                prefer = (self.tuning is not None
                          and self.tuning.prefer_local_placement)
                if prefer or self._load[best_local] <= self._load[worker]:
                    worker = best_local
                    reason = "block-local"
            vertex.worker = self._assign(worker)
            self._trace_place(op.name, vertex.subtask_index, vertex.worker,
                              reason)

    def schedule_collection_source(self, jv: ExecutionJobVertex,
                                   partitions: List[Partition]) -> None:
        """Spread a collection source's pre-split partitions across workers."""
        for vertex, part in zip(jv.subtasks, partitions):
            worker = self._least_loaded()
            vertex.worker = self._assign(worker)
            part.worker = vertex.worker
            self._trace_place(jv.op.name, vertex.subtask_index,
                              vertex.worker, "spread")

    def schedule_consumer(self, jv: ExecutionJobVertex,
                          graph: ExecutionGraph,
                          input_partitions: List[List[Partition]]) -> None:
        """Assign workers to a non-source operator's subtasks.

        ``input_partitions[k]`` holds the materialized partitions of input
        ``k`` (for locality decisions).
        """
        op = jv.op
        forward_idx = None
        for k, strat in enumerate(op.strategies):
            if strat is ShipStrategy.FORWARD:
                forward_idx = k
                break
        union = ShipStrategy.UNION_LEFT in op.strategies
        for vertex in jv.subtasks:
            home = None
            if union:
                # Subtask j consumes left partition j, or right partition
                # j - p_left: co-locate with whichever feeds it.
                left = input_partitions[0]
                right = input_partitions[1] if len(input_partitions) > 1 \
                    else []
                j = vertex.subtask_index
                if j < len(left):
                    home = left[j].worker
                elif j - len(left) < len(right):
                    home = right[j - len(left)].worker
            elif forward_idx is not None:
                parts = input_partitions[forward_idx]
                if vertex.subtask_index < len(parts):
                    home = parts[vertex.subtask_index].worker
            if home is not None and home in self.worker_names \
                    and self._is_healthy(home):
                vertex.worker = self._assign(home)
                reason = "colocate-input"
            else:
                vertex.worker = self._assign(self._least_loaded())
                reason = "spread"
            self._trace_place(op.name, vertex.subtask_index, vertex.worker,
                              reason)

    def schedule_subtask(self, vertex: ExecutionVertex,
                         colocate: Optional[str] = None) -> str:
        """Lazily place one subtask (pipelined executor).

        Streamed edges (forward/union) preserve partitioning, so a consumer
        subtask is placed the moment its producer partition's home is known:
        co-located with it when that worker is healthy, otherwise on the
        least-loaded healthy worker.  This is the per-subtask counterpart of
        :meth:`schedule_consumer`, which places a whole wave at once.
        """
        if colocate is not None and colocate in self.worker_names \
                and self._is_healthy(colocate):
            vertex.worker = self._assign(colocate)
            reason = "colocate-input"
        else:
            vertex.worker = self._assign(self._least_loaded())
            reason = "spread"
        self._trace_place(vertex.op.name, vertex.subtask_index,
                          vertex.worker, reason)
        return vertex.worker

    # -- retry re-placement ---------------------------------------------------------
    def reschedule(self, vertex: ExecutionVertex,
                   avoid: Iterable[str] = (),
                   reason: str = "retry") -> str:
        """Re-place a retried/displaced subtask onto a healthy worker.

        The previous assignment's load is released; the new attempt goes to
        the least-loaded healthy worker outside ``avoid`` when any exists.
        When *every* healthy worker is in ``avoid`` (single-node clusters,
        correlated failures) the fallback is deterministic: the
        least-recently-faulted healthy worker, ties broken by load then
        name — not an arbitrary member of the avoid set.  Callers that can
        afford it should check :meth:`all_avoided` first and wait a
        back-off before re-placing (the JobManager retry loop does).
        Raises :class:`~repro.common.errors.JobExecutionError` when no
        healthy worker remains at all.
        """
        avoid = set(avoid)
        if vertex.worker is not None and vertex.worker in self._load:
            self._load[vertex.worker] -= 1
        healthy = self._healthy_names()
        candidates = [w for w in healthy if w not in avoid]
        if candidates:
            pick = min(candidates, key=lambda w: (self._load[w], w))
        else:
            pick = min(healthy, key=lambda w: (self._last_fault.get(w, 0),
                                               self._load[w], w))
            reason = f"{reason}-fallback"
        vertex.worker = self._assign(pick)
        self._trace_place(vertex.op.name, vertex.subtask_index,
                          vertex.worker, reason)
        return vertex.worker

    def release(self, jv: ExecutionJobVertex) -> None:
        """Forget load contributed by a finished operator."""
        for vertex in jv.subtasks:
            if vertex.worker is not None:
                self._load[vertex.worker] -= 1
