"""Cached-partition rebalancing for elastic membership.

When the cluster's shape changes mid-run, already-materialized partitions
(iteration state, persisted datasets) are sitting on the old members.  The
:class:`Rebalancer` moves them without recomputation:

* :meth:`Rebalancer.rebalance_onto` — a worker joined: migrate a fair share
  of cached partitions onto it so iterative jobs actually use the new
  capacity (colocation-driven placement follows the partitions).
* :meth:`Rebalancer.migrate_off` — a worker is draining: move everything it
  holds to the surviving members before it leaves, so nothing is lost and
  lineage recovery never runs.

Migration uses the PR 8 zero-copy wire format: a partition's columnar byte
regions go on the wire verbatim — the only CPU charged is the per-block
descriptor cost (:meth:`repro.flink.serialization.Serializer.zero_copy_time`),
never per-row serde.  Functionally a migration is pure bookkeeping (payloads
are held by reference), so results stay bit-identical; only placement and
timing change.

GPU-cache residency moves *lazily*: device caches are per-worker, so blocks
a migrated partition left cached on the source device can no longer attract
locality-aware scheduling (consumers now colocate with the partition's new
home) and age out by LRU; the destination warms through the normal
cache-miss path on first access.  An abrupt leave needs none of this —
lineage recovery recomputes lost partitions wherever the scheduler re-places
them (docs/FAULT_TOLERANCE.md, "Elasticity & autoscaling").
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.common.simclock import Event
from repro.flink.partition import Partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.runtime import Cluster

__all__ = ["Rebalancer"]


class Rebalancer:
    """Migrates materialized partitions between cluster members."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.env = cluster.env

    # -- inventory ---------------------------------------------------------------
    def resident_counts(self) -> dict:
        """Materialized-partition count per current member."""
        counts = {name: 0 for name in self.cluster.member_names()}
        for _, part in self._inventory():
            if part.worker in counts:
                counts[part.worker] += 1
        return counts

    def _inventory(self) -> List[Tuple[int, Partition]]:
        """(dataset uid, partition) pairs in deterministic order."""
        out = []
        for uid in sorted(self.cluster.materialized):
            for part in self.cluster.materialized[uid]:
                out.append((uid, part))
        return out

    # -- one migration -----------------------------------------------------------
    def migrate_partition(self, uid: int, part: Partition,
                          target: str) -> Generator[Event, None, None]:
        """Simulation process: re-home one partition onto ``target``.

        Charges the zero-copy framing cost plus the wire transfer of the
        partition's nominal bytes, then moves the bookkeeping: the source
        TaskManager forgets the partition, the destination registers it,
        and ``part.worker`` flips — every later consumer colocates with
        (or ships from) the new home.
        """
        cluster = self.cluster
        source = part.worker
        nbytes = part.nominal_nbytes
        tracer = cluster.obs.tracer
        track = tracer.track(cluster.master_name, "rebalance")
        n_blocks = max(1, math.ceil(
            nbytes / cluster.tuning.pipeline_block_nbytes))
        with tracer.span("rebalance.migrate", "rebalance", track,
                         dataset=uid, partition=part.index, src=source,
                         dst=target, nbytes=nbytes):
            frame_s = cluster.serializer.zero_copy_time(nbytes, n_blocks)
            if frame_s > 0:
                yield self.env.timeout(frame_s)
            if nbytes > 0 and source != target:
                yield from cluster.network.transfer(source, target,
                                                    int(nbytes))
        src_worker = cluster.workers.get(source)
        if src_worker is not None:
            src_worker.taskmanager.remove_partition(uid, part.index)
        part.worker = target
        dst_worker = cluster.workers.get(target)
        if dst_worker is not None:
            dst_worker.taskmanager.put_partition(uid, part)
        reg = cluster.obs.registry
        reg.counter("rebalance.partitions", dst=target).inc()
        reg.counter("rebalance.bytes", dst=target).inc(nbytes)
        cluster.obs.monitor.count("rebalance.partitions", dst=target)

    # -- membership-event flows ----------------------------------------------------
    def rebalance_onto(self, joiner: str) -> Generator[Event, None, int]:
        """Simulation process: even out cached partitions toward ``joiner``.

        Repeatedly takes one partition from the most-loaded member (by
        resident count, ties broken by name) until the joiner is within one
        partition of every donor — the same stop rule a consistent-hash
        ring's expected transfer gives, but deterministic.  Returns the
        number of partitions moved.
        """
        moved = 0
        while True:
            if not self.cluster.worker_is_schedulable(joiner):
                break  # joiner died/drained while we were moving state
            counts = self.resident_counts()
            if joiner not in counts:
                break
            donors = [(n, c) for n, c in counts.items()
                      if n != joiner and c > counts[joiner] + 1
                      and self.cluster.worker_is_alive(n)]
            if not donors:
                break
            donor = max(donors, key=lambda nc: (nc[1], nc[0]))[0]
            choice: Optional[Tuple[int, Partition]] = next(
                ((uid, part) for uid, part in self._inventory()
                 if part.worker == donor), None)
            if choice is None:
                break
            yield from self.migrate_partition(choice[0], choice[1], joiner)
            moved += 1
        if moved:
            self.cluster.note_recovery_action("rebalance")
        return moved

    def migrate_off(self, leaver: str) -> Generator[Event, None, int]:
        """Simulation process: move every partition off a draining worker.

        Destinations are the schedulable members, least-loaded first
        (recomputed after each move so the drained state spreads evenly).
        Returns the number of partitions moved; partitions stay put — and
        fall to lineage recovery — only when no member can take them.
        """
        moved = 0
        for uid, part in self._inventory():
            if part.worker != leaver:
                continue
            worker = self.cluster.workers.get(leaver)
            if worker is not None and not worker.alive:
                break  # killed mid-drain: the failure path owns the rest
            counts = self.resident_counts()
            targets = [n for n in self.cluster.member_names()
                       if n != leaver
                       and self.cluster.worker_is_schedulable(n)]
            if not targets:
                break
            target = min(targets, key=lambda n: (counts.get(n, 0), n))
            yield from self.migrate_partition(uid, part, target)
            moved += 1
        if moved:
            self.cluster.note_recovery_action("rebalance")
        return moved
