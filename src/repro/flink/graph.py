"""Execution graph: the physical form of a compiled job.

The JobManager compiles the logical plan (reachable
:class:`~repro.flink.plan.Operator` DAG) into an :class:`ExecutionGraph`:
one :class:`ExecutionJobVertex` per operator, expanded into ``parallelism``
:class:`ExecutionVertex` subtasks with worker assignments filled in by the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.flink.plan import Operator, ShipStrategy, topological_order
from repro.hdfs.blocks import Block


@dataclass
class ExecutionVertex:
    """One subtask of one operator."""

    op: Operator
    subtask_index: int
    worker: Optional[str] = None
    assigned_blocks: List[Block] = field(default_factory=list)
    attempts: int = 0


@dataclass
class ExecutionJobVertex:
    """All subtasks of one operator."""

    op: Operator
    parallelism: int
    subtasks: List[ExecutionVertex] = field(default_factory=list)

    def expand(self) -> None:
        """Create the subtask list (idempotent)."""
        if not self.subtasks:
            self.subtasks = [ExecutionVertex(self.op, i)
                             for i in range(self.parallelism)]


class ExecutionGraph:
    """The compiled job: job vertices in dependency order."""

    def __init__(self, sinks: List[Operator], default_parallelism: int):
        self.sinks = sinks
        self.order = topological_order(sinks)
        self.vertices: Dict[int, ExecutionJobVertex] = {}
        for op in self.order:
            parallelism = self._resolve_parallelism(op, default_parallelism)
            jv = ExecutionJobVertex(op, parallelism)
            jv.expand()
            self.vertices[op.uid] = jv

    def _resolve_parallelism(self, op: Operator, default: int) -> int:
        if op.parallelism is not None:
            return op.parallelism
        if ShipStrategy.UNION_LEFT in op.strategies:
            # A union runs one subtask per input partition of either side.
            return sum(self.vertices[inp.uid].parallelism
                       for inp in op.inputs)
        forward_inputs = [
            inp for inp, strat in zip(op.inputs, op.strategies)
            if strat is ShipStrategy.FORWARD
        ]
        if forward_inputs:
            # FORWARD requires equal parallelism with the (first) input.
            return self.vertices[forward_inputs[0].uid].parallelism
        return default

    def job_vertex(self, op: Operator) -> ExecutionJobVertex:
        """The job vertex compiled for ``op``."""
        return self.vertices[op.uid]

    def pipeline_regions(self) -> List[List[Operator]]:
        """Operators grouped into streaming pipeline regions.

        See :func:`repro.flink.optimizer.pipeline_regions`; the pipelined
        executor annotates spans with the region index and the docs use it
        to explain where blocks flow versus where they materialize.
        """
        from repro.flink.optimizer import pipeline_regions
        return pipeline_regions(self.order)

    @property
    def total_subtasks(self) -> int:
        """Number of subtasks across the whole graph."""
        return sum(jv.parallelism for jv in self.vertices.values())
