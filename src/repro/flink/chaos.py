"""Chaos engineering on the simulated clock: failure domains end-to-end.

The paper picks Flink for its reliability — "replication and error detection
to schedule around failures" (§1.1).  This module provides the *fault side*
of that story as a first-class, deterministic subsystem:

* :class:`ChaosSchedule` — a declarative, seeded schedule of faults: kill a
  worker at time *t*, fail a GPU device (ECC error / device OOM / kernel
  hang-timeout), corrupt or time out a PCIe transfer, or fail individual
  task attempts (the per-attempt :class:`~repro.flink.fault.FailureInjector`
  stays available as the low-level hook via :meth:`ChaosSchedule.injector`).
  :meth:`ChaosSchedule.random` draws Poisson fault arrivals from
  :mod:`repro.common.rng`, so a whole chaos run is reproducible from one
  integer.
* :class:`ChaosEngine` — the simulation process that applies the schedule
  to a live cluster and runs the master's *heartbeat monitor*: a dead worker
  stops heartbeating and is declared dead once
  ``FlinkConfig.heartbeat_timeout_s`` passes, which is what releases its
  displaced subtasks for re-placement and its lost partitions for lineage
  recovery (see :mod:`repro.flink.jobmanager`).
* :func:`backoff_delay` — exponential back-off with deterministic jitter for
  retried attempts, shared by the JobManager's retry loop and unit tests.

Nothing here runs unless a schedule is installed
(:meth:`repro.flink.runtime.Cluster.install_chaos`): a fault-free simulation
schedules zero extra events and its clock stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.common.rng import generator
from repro.common.simclock import Event
from repro.flink.config import FlinkConfig
from repro.flink.fault import FailureInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.runtime import Cluster

__all__ = ["FaultKind", "ChaosEvent", "ChaosSchedule", "ChurnSchedule",
           "ChaosEngine", "backoff_delay", "values_equal",
           "GPU_FAULT_KINDS", "PCIE_FAULT_KINDS", "MEMBERSHIP_KINDS"]


def values_equal(a: Any, b: Any) -> bool:
    """Exact structural equality of two job results.

    Chaos acceptance is *identical results*, not approximately-equal ones:
    lineage recovery re-executes the same deterministic operators on the
    same inputs, and CPU fallback runs the same kernel function over the
    same page-sized blocks, so even floating-point reductions must come out
    bit-identical.  Handles numpy arrays and nested containers.
    """
    if hasattr(a, "shape") or hasattr(b, "shape"):  # numpy-like
        import numpy as np
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(values_equal(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(values_equal(x, y) for x, y in zip(a, b)))
    return bool(a == b)


class FaultKind(Enum):
    """The failure domains the chaos engine can exercise."""

    WORKER_KILL = "worker-kill"    # whole node dies (TaskManager + datanode)
    GPU_ECC = "gpu-ecc"            # uncorrectable ECC error: device is gone
    GPU_OOM = "gpu-oom"            # transient device OOM: next GWork fails
    GPU_HANG = "gpu-hang"          # kernel hang: charged a watchdog timeout
    PCIE_CORRUPT = "pcie-corrupt"  # corrupted transfer: work must be redone
    PCIE_TIMEOUT = "pcie-timeout"  # stalled transfer: charged a timeout
    # Membership churn (not failures — elastic capacity changes):
    WORKER_JOIN = "worker-join"    # a new worker registers mid-job
    WORKER_DRAIN = "worker-drain"  # graceful leave: quiesce, migrate, retire
    WORKER_LEAVE = "worker-leave"  # abrupt leave: deregister + node death


#: GPU-device fault kinds (target a device; ECC is permanent).
GPU_FAULT_KINDS = (FaultKind.GPU_ECC, FaultKind.GPU_OOM, FaultKind.GPU_HANG)
#: PCIe transfer fault kinds (transient; the retried work goes through).
PCIE_FAULT_KINDS = (FaultKind.PCIE_CORRUPT, FaultKind.PCIE_TIMEOUT)
#: Elastic-membership event kinds (capacity changes, not faults).
MEMBERSHIP_KINDS = (FaultKind.WORKER_JOIN, FaultKind.WORKER_DRAIN,
                    FaultKind.WORKER_LEAVE)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: what happens, where, and when."""

    at: float
    kind: FaultKind
    worker: str
    device: Optional[int] = None  # GPU index on ``worker`` for device faults

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        needs_device = (self.kind in GPU_FAULT_KINDS
                        or self.kind in PCIE_FAULT_KINDS)
        if needs_device and self.device is None:
            object.__setattr__(self, "device", 0)


def _event_order(event: ChaosEvent) -> Tuple:
    return (event.at, event.worker, event.kind.value,
            -1 if event.device is None else event.device)


class ChaosSchedule:
    """A deterministic, seeded schedule of cluster faults.

    Build one fluently::

        schedule = (ChaosSchedule()
                    .kill_worker("worker1", at=40.0)
                    .fail_gpu("worker0", device=0, at=10.0)
                    .fail_task("gpu-map(kmeans)", subtask=3, attempts=1))

    or draw one at random (reproducibly) with :meth:`random`.  The same seed
    and the same schedule give a bit-identical simulated clock and identical
    results — chaos runs are diffable artifacts, like traces.
    """

    def __init__(self, events: Optional[List[ChaosEvent]] = None):
        self._events: List[ChaosEvent] = list(events or [])
        #: (op_name, subtask) -> number of attempts to fail (low-level hook).
        self.task_failures: Dict[Tuple[str, int], int] = {}

    # -- builders ---------------------------------------------------------------
    def add(self, event: ChaosEvent) -> "ChaosSchedule":
        self._events.append(event)
        return self

    def kill_worker(self, worker: str, at: float) -> "ChaosSchedule":
        """Kill ``worker`` (TaskManager, partitions, datanode) at time ``at``."""
        return self.add(ChaosEvent(at=at, kind=FaultKind.WORKER_KILL,
                                   worker=worker))

    def fail_gpu(self, worker: str, device: int, at: float,
                 kind: FaultKind = FaultKind.GPU_ECC) -> "ChaosSchedule":
        """Fault GPU ``device`` of ``worker`` at time ``at``."""
        if kind not in GPU_FAULT_KINDS:
            raise ValueError(f"not a GPU fault kind: {kind}")
        return self.add(ChaosEvent(at=at, kind=kind, worker=worker,
                                   device=device))

    def fault_pcie(self, worker: str, device: int, at: float,
                   kind: FaultKind = FaultKind.PCIE_CORRUPT
                   ) -> "ChaosSchedule":
        """Corrupt/time out the next PCIe transfer on a device at ``at``."""
        if kind not in PCIE_FAULT_KINDS:
            raise ValueError(f"not a PCIe fault kind: {kind}")
        return self.add(ChaosEvent(at=at, kind=kind, worker=worker,
                                   device=device))

    def fail_task(self, op_name: str, subtask: int,
                  attempts: int = 1) -> "ChaosSchedule":
        """Fail the first ``attempts`` attempts of one subtask (generalizes
        the per-attempt FailureInjector plan)."""
        self.task_failures[(op_name, subtask)] = attempts
        return self

    # -- membership builders -----------------------------------------------------
    def join_worker(self, at: float,
                    name: Optional[str] = None) -> "ChaosSchedule":
        """A new worker joins at ``at``.  Auto-named ``elastic{k}`` (the
        cluster's own naming scheme) so later drain/leave events can target
        it by name."""
        if name is None:
            joins = sum(1 for e in self._events
                        if e.kind is FaultKind.WORKER_JOIN)
            name = f"elastic{joins}"
        return self.add(ChaosEvent(at=at, kind=FaultKind.WORKER_JOIN,
                                   worker=name))

    def drain_worker(self, worker: str, at: float) -> "ChaosSchedule":
        """Gracefully drain ``worker`` (quiesce, migrate state, retire)."""
        return self.add(ChaosEvent(at=at, kind=FaultKind.WORKER_DRAIN,
                                   worker=worker))

    def leave_worker(self, worker: str, at: float) -> "ChaosSchedule":
        """Abruptly deregister ``worker`` (leave = deregister + node death:
        displaced subtasks retry, lost partitions recompute by lineage)."""
        return self.add(ChaosEvent(at=at, kind=FaultKind.WORKER_LEAVE,
                                   worker=worker))

    # -- views -------------------------------------------------------------------
    @property
    def events(self) -> List[ChaosEvent]:
        """Scheduled faults in deterministic application order."""
        return sorted(self._events, key=_event_order)

    def injector(self) -> Optional[FailureInjector]:
        """A FailureInjector for the schedule's per-attempt task failures."""
        if not self.task_failures:
            return None
        return FailureInjector(plan=dict(self.task_failures))

    def __len__(self) -> int:
        return len(self._events)

    # -- random generation -----------------------------------------------------------
    @classmethod
    def random(cls, seed: int, duration_s: float, workers: List[str],
               gpus_per_worker: int = 0,
               worker_kill_rate: float = 0.0,
               gpu_fault_rate: float = 0.0,
               pcie_fault_rate: float = 0.0,
               start_s: float = 0.0) -> "ChaosSchedule":
        """Draw Poisson fault arrivals over ``[start_s, start_s+duration_s]``.

        Rates are events per second.  Arrivals use the conditional-
        uniformity construction (draw ``n ~ Poisson(rate * duration)``,
        then ``n`` uniforms over the window) rather than summing
        exponential gaps: the distributions are identical, but a window
        only a couple of mean gaps long no longer degenerates to "first
        arrival past the end, zero faults" for an unlucky seed — every
        drawn fault is guaranteed to land *inside* the job window.

        Worker kills are capped at ``len(workers) - 1`` distinct victims so
        at least one worker always survives to recover onto.  Each fault
        family draws from its own derived stream, so turning one rate up
        does not perturb the others.
        """
        schedule = cls()

        def arrivals(rng, rate: float) -> List[float]:
            n = int(rng.poisson(rate * duration_s))
            return sorted(start_s + float(u)
                          for u in rng.uniform(0.0, duration_s, size=n))

        if worker_kill_rate > 0 and len(workers) > 1:
            rng = generator(seed, "chaos", "worker-kill")
            victims: set = set()
            for t in arrivals(rng, worker_kill_rate):
                if len(victims) >= len(workers) - 1:
                    break
                alive = [w for w in workers if w not in victims]
                victim = alive[int(rng.integers(len(alive)))]
                victims.add(victim)
                schedule.kill_worker(victim, at=t)
        if gpu_fault_rate > 0 and gpus_per_worker > 0:
            rng = generator(seed, "chaos", "gpu-fault")
            for t in arrivals(rng, gpu_fault_rate):
                worker = workers[int(rng.integers(len(workers)))]
                device = int(rng.integers(gpus_per_worker))
                kind = GPU_FAULT_KINDS[int(rng.integers(len(GPU_FAULT_KINDS)))]
                schedule.fail_gpu(worker, device, at=t, kind=kind)
        if pcie_fault_rate > 0 and gpus_per_worker > 0:
            rng = generator(seed, "chaos", "pcie-fault")
            for t in arrivals(rng, pcie_fault_rate):
                worker = workers[int(rng.integers(len(workers)))]
                device = int(rng.integers(gpus_per_worker))
                kind = PCIE_FAULT_KINDS[
                    int(rng.integers(len(PCIE_FAULT_KINDS)))]
                schedule.fault_pcie(worker, device, at=t, kind=kind)
        return schedule


class ChurnSchedule(ChaosSchedule):
    """A :class:`ChaosSchedule` of *membership* events (joins/drains/leaves).

    Same machinery, different vocabulary: churn events are applied by the
    same :class:`ChaosEngine` injector, and a churn schedule can be mixed
    freely with fault events (a worker that joined at 10s can be killed at
    40s).  :meth:`random` draws a seeded Poisson join/leave timeline.
    """

    @classmethod
    def random(cls, seed: int, duration_s: float, workers: List[str],
               join_rate: float = 0.0, leave_rate: float = 0.0,
               drain_fraction: float = 0.5, min_workers: int = 1,
               start_s: float = 0.0) -> "ChurnSchedule":
        """Draw Poisson join/leave arrivals over ``[start_s, start_s+duration_s]``.

        Rates are events per second (conditional-uniformity construction,
        like :meth:`ChaosSchedule.random`).  Joins are named ``elastic{k}``
        in arrival order — the cluster's own auto-naming — so a later leave
        can hit a worker that joined earlier in the same run.  Each leave
        picks a uniform victim from the *current* pool (initial workers
        plus joiners minus departures) and is a graceful drain with
        probability ``drain_fraction``, an abrupt leave otherwise.  Leaves
        that would shrink the pool below ``min_workers`` are dropped.
        """
        schedule = cls()

        def arrivals(rng, rate: float) -> List[float]:
            n = int(rng.poisson(rate * duration_s))
            return sorted(start_s + float(u)
                          for u in rng.uniform(0.0, duration_s, size=n))

        join_rng = generator(seed, "churn", "join")
        leave_rng = generator(seed, "churn", "leave")
        timeline = [(t, "join") for t in arrivals(join_rng, join_rate)] + \
                   [(t, "leave") for t in arrivals(leave_rng, leave_rate)]
        timeline.sort()
        pool = list(workers)
        next_id = 0
        for t, what in timeline:
            if what == "join":
                name = f"elastic{next_id}"
                next_id += 1
                schedule.join_worker(at=t, name=name)
                pool.append(name)
            else:
                if len(pool) <= min_workers:
                    continue
                victim = pool.pop(int(leave_rng.integers(len(pool))))
                if float(leave_rng.random()) < drain_fraction:
                    schedule.drain_worker(victim, at=t)
                else:
                    schedule.leave_worker(victim, at=t)
        return schedule


def backoff_delay(flink: FlinkConfig, attempt: int, *identity: Any) -> float:
    """Back-off before retry ``attempt`` (1-based) of one subtask.

    ``base * 2**(attempt-1)`` capped at ``retry_backoff_max_s``, stretched by
    a deterministic jitter factor in ``[1, 1 + retry_backoff_jitter]`` drawn
    from ``retry_jitter_seed`` and the subtask ``identity`` — two retries of
    different subtasks de-synchronize (no thundering herd on the surviving
    workers) yet every run replays the exact same delays.
    """
    base = flink.retry_backoff_base_s
    if base <= 0.0 or attempt <= 0:
        return 0.0
    delay = min(base * (2.0 ** (attempt - 1)), flink.retry_backoff_max_s)
    jitter = flink.retry_backoff_jitter
    if jitter > 0.0:
        rng = generator(flink.retry_jitter_seed, "backoff",
                        *[str(part) for part in identity], str(attempt))
        delay *= 1.0 + jitter * float(rng.random())
    return delay


class ChaosEngine:
    """Applies a :class:`ChaosSchedule` to a live cluster + heartbeat monitor.

    Created by :meth:`repro.flink.runtime.Cluster.install_chaos`.  Two
    simulation processes:

    * the *injector* walks the schedule and applies each fault at its time;
    * the *heartbeat monitor* ticks every ``heartbeat_interval_s`` and
      declares a non-heartbeating worker dead after ``heartbeat_timeout_s``
      — the detection latency every displaced subtask observes before the
      scheduler re-places it.

    Both exit when their work is done so the event heap drains normally.
    """

    def __init__(self, cluster: "Cluster", schedule: ChaosSchedule):
        self.cluster = cluster
        self.schedule = schedule
        self.env = cluster.env
        self.applied: List[ChaosEvent] = []
        #: Events that could not be applied (e.g. drain/leave of a worker
        #: that never joined or already left), with the reason.
        self.skipped: List[Tuple[ChaosEvent, str]] = []
        #: worker -> declaration time (detection latency = this - killed_at).
        self.declared: Dict[str, float] = {}
        #: In-flight graceful-drain processes (spawned by WORKER_DRAIN).
        self.drains: List[Any] = []
        self.process = self.env.process(self._run(), name="chaos-injector")
        self._monitor = self.env.process(self._heartbeat_monitor(),
                                         name="heartbeat-monitor")

    # -- the injector process -----------------------------------------------------
    def _run(self) -> Generator[Event, None, None]:
        for event in self.schedule.events:
            if event.at > self.env.now:
                yield self.env.timeout(event.at - self.env.now)
            self._apply(event)

    def _apply(self, event: ChaosEvent) -> None:
        obs = self.cluster.obs
        tracer = obs.tracer
        track = tracer.track("chaos", "injector")
        if event.kind in MEMBERSHIP_KINDS:
            reason = self._check_membership(event)
            if reason is not None:
                self.skipped.append((event, reason))
                tracer.instant(f"chaos.skip.{event.kind.value}", "chaos",
                               track, worker=event.worker, reason=reason)
                obs.registry.counter("chaos.skipped",
                                     kind=event.kind.value).inc()
                return
        tracer.instant(f"chaos.{event.kind.value}", "chaos", track,
                       worker=event.worker,
                       **({} if event.device is None
                          else {"device": event.device}))
        obs.registry.counter("chaos.events", kind=event.kind.value).inc()
        self.applied.append(event)
        if obs.recorder is not None:
            # Post-mortem bundle at the moment of injection: the trace
            # slice and metric windows show the cluster state the fault
            # landed in (host-side file I/O only — no simulation events).
            obs.recorder.record_fault(self.cluster, event)
        if event.kind is FaultKind.WORKER_JOIN:
            self.cluster.add_worker(event.worker)
            return
        if event.kind is FaultKind.WORKER_DRAIN:
            self.drains.append(self.env.process(
                self.cluster.drain_worker(event.worker),
                name=f"drain-{event.worker}"))
            return
        if event.kind is FaultKind.WORKER_LEAVE:
            self.cluster.remove_worker(event.worker)
            return
        if event.kind is FaultKind.WORKER_KILL:
            self.cluster.fail_worker(event.worker)
            return
        worker = self.cluster.workers.get(event.worker)
        gpumanager = getattr(worker, "gpumanager", None)
        if gpumanager is not None:
            gpumanager.inject_device_fault(event.device or 0, event.kind)

    def _check_membership(self, event: ChaosEvent) -> Optional[str]:
        """Why ``event`` cannot be applied right now, or None if it can."""
        cluster = self.cluster
        if event.kind is FaultKind.WORKER_JOIN:
            if event.worker in cluster.workers:
                return "name-already-used"
            return None
        worker = cluster.workers.get(event.worker)
        if worker is None or not cluster.is_member(event.worker):
            return "not-a-member"
        if not worker.alive:
            return "already-dead"
        if worker.draining:
            return "already-draining"
        return None

    # -- the heartbeat monitor ------------------------------------------------------
    def ensure_monitor(self) -> None:
        """Restart the monitor if it already drained (late manual kills)."""
        if self._monitor.triggered:
            self._monitor = self.env.process(self._heartbeat_monitor(),
                                             name="heartbeat-monitor")

    def _heartbeat_monitor(self) -> Generator[Event, None, None]:
        flink = self.cluster.config.flink
        interval = max(flink.heartbeat_interval_s, 1e-9)
        timeout = flink.heartbeat_timeout_s
        while True:
            if self.process.triggered and not self._undetected():
                return  # schedule fully applied, every death declared
            yield self.env.timeout(interval)
            now = self.env.now
            monitor = self.cluster.obs.monitor
            monitor.tick()
            for name in self._undetected():
                worker = self.cluster.workers[name]
                # ``or now`` would misread a kill at exactly t=0.0 (falsy)
                # as "no timestamp" and never declare it.
                failed_at = worker.failed_at \
                    if worker.failed_at is not None else now
                # Every tick a dead worker stays undeclared is one missed
                # heartbeat — the worker_unhealthy alert's feed.
                monitor.heartbeat_missed(name)
                if now - failed_at >= timeout:
                    self.declared[name] = now
                    self.cluster.declare_worker_dead(name)

    def _undetected(self) -> List[str]:
        """Dead-but-not-yet-declared workers, in stable name order."""
        return [name for name, worker
                in sorted(self.cluster.workers.items())
                if not worker.alive
                and not self.cluster.worker_is_declared_dead(name)]

    # -- reporting ------------------------------------------------------------------
    def recovery_latencies(self) -> List[Dict[str, Any]]:
        """Per-event recovery latency (time to steady state), derived by
        windowing the cluster's recovery-action log.

        Each applied event owns the window from its injection time to the
        next event's (the last window is open-ended).  Its recovery latency
        is the time from injection to the *last* recovery action inside the
        window — declarations, retry re-placements, lineage recomputes,
        migrations, drain completions.  An event whose window contains no
        actions (e.g. a join with nothing to rebalance) recovered in 0.
        """
        events = sorted(self.applied, key=_event_order)
        log = sorted(self.cluster.recovery_log)
        out = []
        for i, event in enumerate(events):
            end = events[i + 1].at if i + 1 < len(events) else float("inf")
            window = [(t, kind) for t, kind in log if event.at <= t < end]
            latency = max((t for t, _ in window), default=event.at) - event.at
            out.append({
                "at": event.at,
                "kind": event.kind.value,
                "worker": event.worker,
                "recovery_latency_s": latency,
                "actions": [kind for _, kind in window],
            })
        return out

    def summary(self) -> Dict[str, Any]:
        """Applied faults + detection/recovery latencies, for resilience
        reports."""
        from repro.obs.metrics import Histogram
        kills = {e.worker: e.at for e in self.applied
                 if e.kind is FaultKind.WORKER_KILL}
        per_event = self.recovery_latencies()
        hist = Histogram("chaos.recovery_s", ())
        for entry in per_event:
            hist.observe(entry["recovery_latency_s"])
        recovery: Dict[str, Any] = {}
        if per_event:
            recovery = {
                "count": float(hist.count),
                "max": hist.vmax,
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
                "p99": hist.percentile(0.99),
            }
        return {
            "events_applied": len(self.applied),
            "events_skipped": len(self.skipped),
            "by_kind": {
                kind.value: sum(1 for e in self.applied if e.kind is kind)
                for kind in FaultKind
                if any(e.kind is kind for e in self.applied)
            },
            "workers_killed": sorted(kills),
            "detection_latency_s": {
                name: self.declared[name] - kills[name]
                for name in sorted(self.declared) if name in kills
            },
            "recovery_latency_s": recovery,
            "per_event": per_event,
        }
