"""Profiler-driven autoscaler: elastic capacity + online tuning.

The :class:`Autoscaler` is a master-side control loop (a simulation process
ticking every ``policy.interval_s``) that reads the signals the
observability plane already produces and maps each bottleneck class onto
one concrete actuation:

=================  ============================================  =========================
signal             meaning                                       action
=================  ============================================  =========================
``sched_bound``    slot pressure: queued+running subtasks per    ``Cluster.add_worker()``
                   member slot exceeds ``slot_pressure_high``    (more slots, up to
                   (task waves queue behind slots)               ``max_workers``)
``hdfs_bound``     remote-read fraction of ``hdfs.reads``        deepen the pipelined
                   exceeds ``remote_read_fraction_high``         read queue
                   (source parallelism starves on the network)   (``pipeline_queue_blocks``)
``pcie_bound``     a profile summary classifies an operator as   prefer cache/block-local
                   PCIe-dominated (H2D/D2H on the critical       placement unconditionally;
                   path)                                         widen pipeline blocks
=================  ============================================  =========================

Live counters (slot pressure, read locality) are polled every tick;
``pcie_bound`` comes from offline profile summaries fed in through
:meth:`Autoscaler.observe_profile` (e.g. the previous run's summary, or a
mid-run flush).  Actuations write the cluster's mutable
:class:`~repro.flink.config.RuntimeTuning` overlay — never the frozen
config — so logical partitioning, and with it the job's result, is
untouched: the autoscaler changes *when and where* work runs, not *what*
runs.

Two *predictive* policies ride on the trend detectors
(:mod:`repro.obs.anomaly`): each tick feeds the measured slot pressure to
the monitor as a ``scheduler.slot_pressure`` gauge and reads its slope
back through ``GMonitor.trends()`` (falling back to a local
:class:`~repro.obs.anomaly.SlidingTrend` when monitoring is off).  A
*rising* pressure trend adds a worker before the hard
``slot_pressure_high`` threshold is crossed; a pressure that stays below
``slot_pressure_low`` for ``low_pressure_windows`` consecutive ticks with
a non-rising trend **drains** the most recently joined schedulable worker
(never below ``min_workers``).  Draining migrates cached partitions and
keeps logical parallelism pinned, so results stay bit-identical.

Every decision is appended to :attr:`Autoscaler.decisions`, traced as an
alert-style instant on the master's ``autoscaler`` lane, and counted under
``autoscale.decisions`` so the resilience report and dashboard can show
what the loop did and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.common.simclock import Event
from repro.obs.anomaly import SlidingTrend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.runtime import Cluster

__all__ = ["AutoscalerPolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and actuation limits for one autoscaler instance."""

    #: Control-loop tick (simulated seconds).
    interval_s: float = 2.0
    #: Minimum spacing between two scale-out actuations.
    cooldown_s: float = 5.0
    #: Hard ceiling on cluster size (members), counting the initial workers.
    max_workers: int = 8
    #: Queued+running subtasks per member slot above which the cluster is
    #: scheduler-bound and a worker is added.
    slot_pressure_high: float = 1.5
    #: Remote fraction of HDFS block reads above which the read side is
    #: network-starved and the pipelined read queue is deepened.
    remote_read_fraction_high: float = 0.5
    #: Ceilings for the tuning actuations (never raised past these).
    max_queue_blocks: int = 16
    max_block_nbytes: float = 64 * 2**20
    #: Predictive scale-up: pressure slope (per tick) above which a worker
    #: is added *before* ``slot_pressure_high`` is crossed, provided the
    #: level is already past half the hard threshold.
    predictive: bool = True
    pressure_slope_high: float = 0.05
    #: Scale-down: pressure below ``slot_pressure_low`` for
    #: ``low_pressure_windows`` consecutive ticks with a non-rising trend
    #: (slope <= ``drain_slope_max``) drains one worker, never below
    #: ``min_workers`` schedulable members.
    scale_down: bool = True
    slot_pressure_low: float = 0.25
    low_pressure_windows: int = 5
    min_workers: int = 1
    drain_slope_max: float = 0.0
    #: Ticks of pressure history feeding the trend estimate.
    trend_window: int = 8


@dataclass
class ScaleDecision:
    """One actuation (or explicit hold) taken by the control loop."""

    time: float
    signal: str      # "sched_bound" | "hdfs_bound" | "pcie_bound"
    action: str      # "add_worker" | "deepen_queue" | "prefer_cache" | ...
    detail: Dict[str, Any] = field(default_factory=dict)


class Autoscaler:
    """Online capacity/tuning controller for one :class:`Cluster`."""

    def __init__(self, cluster: "Cluster",
                 policy: Optional[AutoscalerPolicy] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.policy = policy or AutoscalerPolicy()
        self.decisions: List[ScaleDecision] = []
        self._stop = False
        self._process = None
        self._last_scale_at = -float("inf")
        # hdfs.reads counter levels at the previous tick, so each window
        # evaluates the *delta* (recent behavior), not the lifetime mix.
        self._reads_seen = {"local": 0.0, "remote": 0.0}
        # pcie_bound is level-triggered by profile summaries but should
        # actuate once per observation, not every tick.
        self._pcie_pending = False
        # Local trend state over per-tick pressure samples: the fallback
        # slope source when monitoring (and with it GMonitor.trends())
        # is off.  Ticks of low pressure accumulate in _low_run.
        self._pressure_trend = SlidingTrend(window=self.policy.trend_window)
        self._low_run = 0
        # Scale-down only arms after the cluster has been under load at
        # least once: draining during the initial HDFS load phase (when
        # pressure is still zero) would race the block write pipeline.
        self._busy_seen = False
        #: Drain processes started by scale-down decisions.
        self.drains: List[Any] = []

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Install the control loop into the cluster's simulation."""
        if self._process is None:
            self._process = self.env.process(self._run(), name="autoscaler")

    def stop(self) -> None:
        """Stop evaluating; a tick already scheduled becomes a no-op."""
        self._stop = True

    def _run(self) -> Generator[Event, None, None]:
        while not self._stop:
            yield self.env.timeout(self.policy.interval_s)
            if self._stop:
                break
            self._evaluate()

    # -- external signals --------------------------------------------------------
    def observe_profile(self, summary: Dict[str, Any]) -> None:
        """Feed a :mod:`repro.obs.profile` summary into the controller.

        Any operator classified ``pcie_bound`` arms the prefer-cache /
        wider-blocks actuation, applied on the next tick (or immediately if
        the loop is not running).
        """
        ops = (summary or {}).get("operators", {})
        bound = sorted(op for op, entry in ops.items()
                       if entry.get("class") == "pcie_bound")
        if not bound:
            return
        self._pcie_pending = True
        if self._process is None:
            self._apply_pcie(bound)

    # -- one evaluation ------------------------------------------------------------
    def _evaluate(self) -> None:
        policy = self.policy
        if self._pcie_pending:
            self._pcie_pending = False
            self._apply_pcie([])
        pressure = self.slot_pressure()
        # Publish the sample (a gauge the dashboard can plot and trend
        # rules can watch) and update the local fallback detector.
        self.cluster.obs.monitor.gauge("scheduler.slot_pressure", pressure)
        self._pressure_trend.update(pressure)
        slope = self.pressure_slope()
        if pressure > policy.slot_pressure_high:
            self._maybe_add_worker(pressure, slope)
        elif policy.predictive and slope > policy.pressure_slope_high \
                and pressure > policy.slot_pressure_high / 2.0:
            self._maybe_add_worker(pressure, slope, signal="pressure_trend")
        remote_frac = self._remote_read_fraction()
        if remote_frac is not None \
                and remote_frac > policy.remote_read_fraction_high:
            self._deepen_queue(remote_frac)
        if pressure >= policy.slot_pressure_low:
            self._low_run = 0
            self._busy_seen = True
        elif self._busy_seen:
            self._low_run += 1
        if policy.scale_down and self._low_run >= policy.low_pressure_windows \
                and slope <= policy.drain_slope_max:
            self._maybe_drain_worker(pressure, slope)

    # -- signal readers ------------------------------------------------------------
    def slot_pressure(self) -> float:
        """Queued+running subtasks per member slot (>1 means waves queue)."""
        cluster = self.cluster
        members = [cluster.workers[n] for n in cluster.member_names()
                   if cluster.worker_is_schedulable(n)]
        if not members:
            return 0.0
        active = sum(w.taskmanager.active_subtasks for w in members)
        capacity = len(members) * cluster.config.slots
        return active / capacity if capacity else 0.0

    def pressure_slope(self) -> float:
        """Slot-pressure trend, in pressure units per tick.

        Prefers the monitor's ``trends()`` over the published
        ``scheduler.slot_pressure`` gauge (the ROADMAP's "predictive
        policies from GMonitor time-series trends"); falls back to the
        local per-tick detector when monitoring is off.
        """
        trends = self.cluster.obs.monitor.trends(
            "scheduler.slot_pressure", window=self.policy.trend_window)
        for snap in trends.values():
            return float(snap.get("slope") or 0.0)
        return self._pressure_trend.slope()

    def _remote_read_fraction(self) -> Optional[float]:
        """Remote share of HDFS block reads since the previous tick."""
        registry = self.cluster.obs.registry
        deltas = {}
        for locality in ("local", "remote"):
            level = registry.value("hdfs.reads", locality=locality) or 0.0
            deltas[locality] = level - self._reads_seen[locality]
            self._reads_seen[locality] = level
        total = deltas["local"] + deltas["remote"]
        if total <= 0:
            return None
        return deltas["remote"] / total

    # -- actuations ------------------------------------------------------------
    def _maybe_add_worker(self, pressure: float, slope: float = 0.0,
                          signal: str = "sched_bound") -> None:
        cluster = self.cluster
        if len(cluster.member_names()) >= self.policy.max_workers:
            return
        if self.env.now - self._last_scale_at < self.policy.cooldown_s:
            return
        self._last_scale_at = self.env.now
        name = cluster.add_worker()
        self._decide(signal, "add_worker", worker=name,
                     slot_pressure=round(pressure, 3),
                     pressure_slope=round(slope, 4))

    def _maybe_drain_worker(self, pressure: float, slope: float) -> None:
        """Scale-down: drain the most recently joined schedulable worker.

        Draining (not killing): the worker quiesces, migrates its cached
        partitions, then leaves — logical parallelism stays pinned, so
        the job's result is bit-identical; only placement/timing change.
        """
        cluster = self.cluster
        members = [n for n in cluster.member_names()
                   if cluster.worker_is_schedulable(n)]
        if len(members) <= self.policy.min_workers:
            return
        if self.env.now - self._last_scale_at < self.policy.cooldown_s:
            return
        victim = members[-1]
        self._last_scale_at = self.env.now
        self._low_run = 0
        self.drains.append(self.env.process(
            cluster.drain_worker(victim),
            name=f"autoscale-drain-{victim}"))
        self._decide("low_pressure", "drain_worker", worker=victim,
                     slot_pressure=round(pressure, 3),
                     pressure_slope=round(slope, 4),
                     members_left=len(members) - 1)

    def _deepen_queue(self, remote_frac: float) -> None:
        tuning = self.cluster.tuning
        if tuning.pipeline_queue_blocks >= self.policy.max_queue_blocks:
            return
        tuning.pipeline_queue_blocks = min(self.policy.max_queue_blocks,
                                           tuning.pipeline_queue_blocks * 2)
        self._decide("hdfs_bound", "deepen_queue",
                     queue_blocks=tuning.pipeline_queue_blocks,
                     remote_read_fraction=round(remote_frac, 3))

    def _apply_pcie(self, operators: List[str]) -> None:
        tuning = self.cluster.tuning
        changed = False
        if not tuning.prefer_local_placement:
            tuning.prefer_local_placement = True
            changed = True
        wider = min(self.policy.max_block_nbytes,
                    tuning.pipeline_block_nbytes * 2)
        if wider > tuning.pipeline_block_nbytes:
            tuning.pipeline_block_nbytes = wider
            changed = True
        if changed:
            self._decide("pcie_bound", "prefer_cache",
                         operators=operators,
                         block_nbytes=int(tuning.pipeline_block_nbytes))

    # -- bookkeeping ------------------------------------------------------------
    def _decide(self, signal: str, action: str, **detail: Any) -> None:
        decision = ScaleDecision(time=self.env.now, signal=signal,
                                 action=action, detail=detail)
        self.decisions.append(decision)
        obs = self.cluster.obs
        obs.registry.counter("autoscale.decisions", action=action).inc()
        obs.monitor.count("autoscale.decisions", action=action)
        tracer = obs.tracer
        if tracer.enabled:
            tracer.instant(
                f"autoscale.{action}", "alert",
                tracer.track(self.cluster.master_name, "autoscaler"),
                signal=signal, **detail)
