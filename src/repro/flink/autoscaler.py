"""Profiler-driven autoscaler: elastic capacity + online tuning.

The :class:`Autoscaler` is a master-side control loop (a simulation process
ticking every ``policy.interval_s``) that reads the signals the
observability plane already produces and maps each bottleneck class onto
one concrete actuation:

=================  ============================================  =========================
signal             meaning                                       action
=================  ============================================  =========================
``sched_bound``    slot pressure: queued+running subtasks per    ``Cluster.add_worker()``
                   member slot exceeds ``slot_pressure_high``    (more slots, up to
                   (task waves queue behind slots)               ``max_workers``)
``hdfs_bound``     remote-read fraction of ``hdfs.reads``        deepen the pipelined
                   exceeds ``remote_read_fraction_high``         read queue
                   (source parallelism starves on the network)   (``pipeline_queue_blocks``)
``pcie_bound``     a profile summary classifies an operator as   prefer cache/block-local
                   PCIe-dominated (H2D/D2H on the critical       placement unconditionally;
                   path)                                         widen pipeline blocks
=================  ============================================  =========================

Live counters (slot pressure, read locality) are polled every tick;
``pcie_bound`` comes from offline profile summaries fed in through
:meth:`Autoscaler.observe_profile` (e.g. the previous run's summary, or a
mid-run flush).  Actuations write the cluster's mutable
:class:`~repro.flink.config.RuntimeTuning` overlay — never the frozen
config — so logical partitioning, and with it the job's result, is
untouched: the autoscaler changes *when and where* work runs, not *what*
runs.

Every decision is appended to :attr:`Autoscaler.decisions`, traced as an
alert-style instant on the master's ``autoscaler`` lane, and counted under
``autoscale.decisions`` so the resilience report and dashboard can show
what the loop did and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.common.simclock import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.runtime import Cluster

__all__ = ["AutoscalerPolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and actuation limits for one autoscaler instance."""

    #: Control-loop tick (simulated seconds).
    interval_s: float = 2.0
    #: Minimum spacing between two scale-out actuations.
    cooldown_s: float = 5.0
    #: Hard ceiling on cluster size (members), counting the initial workers.
    max_workers: int = 8
    #: Queued+running subtasks per member slot above which the cluster is
    #: scheduler-bound and a worker is added.
    slot_pressure_high: float = 1.5
    #: Remote fraction of HDFS block reads above which the read side is
    #: network-starved and the pipelined read queue is deepened.
    remote_read_fraction_high: float = 0.5
    #: Ceilings for the tuning actuations (never raised past these).
    max_queue_blocks: int = 16
    max_block_nbytes: float = 64 * 2**20


@dataclass
class ScaleDecision:
    """One actuation (or explicit hold) taken by the control loop."""

    time: float
    signal: str      # "sched_bound" | "hdfs_bound" | "pcie_bound"
    action: str      # "add_worker" | "deepen_queue" | "prefer_cache" | ...
    detail: Dict[str, Any] = field(default_factory=dict)


class Autoscaler:
    """Online capacity/tuning controller for one :class:`Cluster`."""

    def __init__(self, cluster: "Cluster",
                 policy: Optional[AutoscalerPolicy] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.policy = policy or AutoscalerPolicy()
        self.decisions: List[ScaleDecision] = []
        self._stop = False
        self._process = None
        self._last_scale_at = -float("inf")
        # hdfs.reads counter levels at the previous tick, so each window
        # evaluates the *delta* (recent behavior), not the lifetime mix.
        self._reads_seen = {"local": 0.0, "remote": 0.0}
        # pcie_bound is level-triggered by profile summaries but should
        # actuate once per observation, not every tick.
        self._pcie_pending = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Install the control loop into the cluster's simulation."""
        if self._process is None:
            self._process = self.env.process(self._run(), name="autoscaler")

    def stop(self) -> None:
        """Stop evaluating; a tick already scheduled becomes a no-op."""
        self._stop = True

    def _run(self) -> Generator[Event, None, None]:
        while not self._stop:
            yield self.env.timeout(self.policy.interval_s)
            if self._stop:
                break
            self._evaluate()

    # -- external signals --------------------------------------------------------
    def observe_profile(self, summary: Dict[str, Any]) -> None:
        """Feed a :mod:`repro.obs.profile` summary into the controller.

        Any operator classified ``pcie_bound`` arms the prefer-cache /
        wider-blocks actuation, applied on the next tick (or immediately if
        the loop is not running).
        """
        ops = (summary or {}).get("operators", {})
        bound = sorted(op for op, entry in ops.items()
                       if entry.get("class") == "pcie_bound")
        if not bound:
            return
        self._pcie_pending = True
        if self._process is None:
            self._apply_pcie(bound)

    # -- one evaluation ------------------------------------------------------------
    def _evaluate(self) -> None:
        if self._pcie_pending:
            self._pcie_pending = False
            self._apply_pcie([])
        pressure = self.slot_pressure()
        if pressure > self.policy.slot_pressure_high:
            self._maybe_add_worker(pressure)
        remote_frac = self._remote_read_fraction()
        if remote_frac is not None \
                and remote_frac > self.policy.remote_read_fraction_high:
            self._deepen_queue(remote_frac)

    # -- signal readers ------------------------------------------------------------
    def slot_pressure(self) -> float:
        """Queued+running subtasks per member slot (>1 means waves queue)."""
        cluster = self.cluster
        members = [cluster.workers[n] for n in cluster.member_names()
                   if cluster.worker_is_schedulable(n)]
        if not members:
            return 0.0
        active = sum(w.taskmanager.active_subtasks for w in members)
        capacity = len(members) * cluster.config.slots
        return active / capacity if capacity else 0.0

    def _remote_read_fraction(self) -> Optional[float]:
        """Remote share of HDFS block reads since the previous tick."""
        registry = self.cluster.obs.registry
        deltas = {}
        for locality in ("local", "remote"):
            level = registry.value("hdfs.reads", locality=locality) or 0.0
            deltas[locality] = level - self._reads_seen[locality]
            self._reads_seen[locality] = level
        total = deltas["local"] + deltas["remote"]
        if total <= 0:
            return None
        return deltas["remote"] / total

    # -- actuations ------------------------------------------------------------
    def _maybe_add_worker(self, pressure: float) -> None:
        cluster = self.cluster
        if len(cluster.member_names()) >= self.policy.max_workers:
            return
        if self.env.now - self._last_scale_at < self.policy.cooldown_s:
            return
        self._last_scale_at = self.env.now
        name = cluster.add_worker()
        self._decide("sched_bound", "add_worker", worker=name,
                     slot_pressure=round(pressure, 3))

    def _deepen_queue(self, remote_frac: float) -> None:
        tuning = self.cluster.tuning
        if tuning.pipeline_queue_blocks >= self.policy.max_queue_blocks:
            return
        tuning.pipeline_queue_blocks = min(self.policy.max_queue_blocks,
                                           tuning.pipeline_queue_blocks * 2)
        self._decide("hdfs_bound", "deepen_queue",
                     queue_blocks=tuning.pipeline_queue_blocks,
                     remote_read_fraction=round(remote_frac, 3))

    def _apply_pcie(self, operators: List[str]) -> None:
        tuning = self.cluster.tuning
        changed = False
        if not tuning.prefer_local_placement:
            tuning.prefer_local_placement = True
            changed = True
        wider = min(self.policy.max_block_nbytes,
                    tuning.pipeline_block_nbytes * 2)
        if wider > tuning.pipeline_block_nbytes:
            tuning.pipeline_block_nbytes = wider
            changed = True
        if changed:
            self._decide("pcie_bound", "prefer_cache",
                         operators=operators,
                         block_nbytes=int(tuning.pipeline_block_nbytes))

    # -- bookkeeping ------------------------------------------------------------
    def _decide(self, signal: str, action: str, **detail: Any) -> None:
        decision = ScaleDecision(time=self.env.now, signal=signal,
                                 action=action, detail=detail)
        self.decisions.append(decision)
        obs = self.cluster.obs
        obs.registry.counter("autoscale.decisions", action=action).inc()
        obs.monitor.count("autoscale.decisions", action=action)
        tracer = obs.tracer
        if tracer.enabled:
            tracer.instant(
                f"autoscale.{action}", "alert",
                tracer.track(self.cluster.master_name, "autoscaler"),
                signal=signal, **detail)
