"""Logical plan: operator DAG built by the DataSet API.

Each operator knows how to execute one of its subtasks as a simulation
process, given a :class:`~repro.flink.jobmanager.TaskContext` and its input
partitions.  GPU operators in :mod:`repro.core.gdst` subclass
:class:`Operator` and override :meth:`Operator.execute_subtask`, which is the
whole integration surface — exactly the paper's claim that GFlink is
"compatible with the compile-time and run-time of Flink".
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Generator, List, Optional, TYPE_CHECKING

import numpy as np

from repro.common.errors import ConfigError
from repro.flink.iterators import (
    apply_filter,
    apply_flat_map,
    apply_grouped_reduce,
    apply_map,
    apply_reduce,
    group_elements,
    is_vectorized,
)
from repro.flink.partition import Partition, real_len

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.jobmanager import TaskContext


class ShipStrategy(Enum):
    """How a consumer subtask obtains its share of a producer's output."""

    FORWARD = "forward"      # partition i -> subtask i, locality preserved
    HASH = "hash"            # repartition by key hash (shuffle)
    BROADCAST = "broadcast"  # full copy to every subtask
    GATHER = "gather"        # everything to a single subtask
    REBALANCE = "rebalance"  # round-robin even redistribution
    UNION_LEFT = "union-left"    # partition i -> subtask i (union, no move)
    UNION_RIGHT = "union-right"  # partition i -> subtask p_left + i

    @property
    def is_streaming(self) -> bool:
        """True for edges the pipelined executor streams block-by-block.

        Point-to-point edges (forward, union) preserve partitioning, so a
        consumer subtask can start as soon as its one producer starts
        emitting.  Hash/gather/broadcast/rebalance edges need *every*
        producer partition before any consumer record is routable — they
        are the true pipeline-region barriers (hash-shuffle build sides,
        iteration supersteps).
        """
        return self in (ShipStrategy.FORWARD, ShipStrategy.UNION_LEFT,
                        ShipStrategy.UNION_RIGHT)


@dataclass(frozen=True)
class OpCost:
    """Cost declaration for a user function.

    flops_per_element
        Arithmetic work per (nominal) element — drives CPU/GPU compute time.
    selectivity
        Expected output/input element ratio.  Used to keep nominal scaling
        consistent for filters and flatMaps whose real selectivity on the
        sample may differ from the nominal workload.  ``None`` means "use the
        observed real ratio".
    out_element_nbytes
        Nominal serialized size of an output element (None = same as input).
    element_overhead_s
        Per-element iterator/virtual-call overhead for this UDF, overriding
        the engine default.  Object-heavy UDFs (sparse rows, tuple chains)
        cost microseconds per element on the JVM — the very overhead the
        paper's GPU path eliminates — while primitive-array UDFs are far
        cheaper.
    """

    flops_per_element: float = 1.0
    selectivity: Optional[float] = None
    out_element_nbytes: Optional[float] = None
    element_overhead_s: Optional[float] = None


_op_counter = itertools.count()


def charge_udf_compute(ctx: "TaskContext", cost: OpCost,
                       nominal_count: float, nominal_nbytes: float,
                       *udfs: Callable) -> Generator[Any, Any, None]:
    """Charge CPU time for an operator, picking the right cost model.

    When every UDF involved opts in via
    :func:`repro.flink.iterators.vectorized` (and
    ``FlinkConfig.vectorized_ops`` is on), the operator is charged the
    *block* model — per-block dispatch plus SIMD-rate arithmetic
    (:meth:`TaskContext.charge_block_compute`); otherwise the classic
    one-element-at-a-time iterator model applies.
    """
    if (ctx.config.flink.vectorized_ops and udfs
            and all(is_vectorized(u) for u in udfs)):
        yield from ctx.charge_block_compute(
            nominal_count, cost.flops_per_element, nominal_nbytes)
    else:
        yield from ctx.charge_compute(
            nominal_count, cost.flops_per_element, cost.element_overhead_s)


class Operator:
    """A node of the logical plan."""

    def __init__(self, name: str, inputs: List["Operator"],
                 parallelism: Optional[int],
                 strategies: List[ShipStrategy],
                 cost: OpCost = OpCost()):
        if len(inputs) != len(strategies):
            raise ConfigError("one ship strategy per input required")
        self.uid = next(_op_counter)
        self.name = name
        self.inputs = inputs
        self.parallelism = parallelism  # None = inherit default at compile
        self.strategies = strategies
        self.cost = cost
        self.persisted = False

    # -- plan helpers ---------------------------------------------------------
    def key_fn_for_input(self, i: int) -> Optional[Callable]:
        """Key extractor used when input ``i`` ships with HASH (or None)."""
        return None

    def combiner_for_input(self, i: int):
        """Optional ``(key_fn, reduce_fn)`` pre-combiner for HASH input ``i``."""
        return None

    # -- runtime ------------------------------------------------------------------
    def execute_subtask(self, ctx: "TaskContext",
                        inputs: List[Partition]
                        ) -> Generator[Any, Any, Partition]:
        """Simulation process executing one subtask; returns its output."""
        raise NotImplementedError

    def out_element_nbytes(self, input_partition: Partition | None) -> float:
        """Nominal per-element output size."""
        if self.cost.out_element_nbytes is not None:
            return self.cost.out_element_nbytes
        if input_partition is not None:
            return input_partition.element_nbytes
        return 8.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} #{self.uid} {self.name!r}>"


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------

class CollectionSource(Operator):
    """A dataset created from an in-driver collection.

    The collection is shipped from the master to the workers once, paying
    serialization and network time.
    """

    def __init__(self, elements: Any, element_nbytes: float,
                 scale: float = 1.0, parallelism: Optional[int] = None,
                 name: str = "collection-source"):
        super().__init__(name, [], parallelism, [])
        self.elements = elements
        self.element_nbytes = element_nbytes
        self.scale = scale

    def execute_subtask(self, ctx, inputs):
        part = ctx.preassigned_partition
        # Master -> worker shipping of this slice of the collection.
        nbytes = part.nominal_nbytes
        yield ctx.env.timeout(ctx.serializer.serialize_time(
            nbytes, part.nominal_count))
        yield from ctx.network.transfer(ctx.master_name, ctx.worker.name,
                                        int(nbytes))
        yield ctx.env.timeout(ctx.serializer.deserialize_time(
            nbytes, part.nominal_count))
        out = part.derive(part.elements)
        # A retried attempt may have been re-placed: the output lives where
        # the subtask actually ran, not where the slice was first assigned.
        out.worker = ctx.worker.name
        return out


class HdfsSource(Operator):
    """A dataset read from HDFS, block by block, locality-aware.

    ``parser`` maps one block payload to the element payload (defaults to
    identity).  Subtask *i* reads the blocks assigned to it by the scheduler
    (stored in ``ctx.assigned_blocks``).
    """

    def __init__(self, path: str, element_nbytes: float,
                 parser: Optional[Callable[[Any], Any]] = None,
                 scale: float = 1.0, parallelism: Optional[int] = None,
                 name: Optional[str] = None):
        super().__init__(name or f"hdfs-source({path})", [], parallelism, [])
        self.path = path
        self.parser = parser or (lambda payload: payload)
        self.element_nbytes = element_nbytes
        self.scale = scale

    def execute_subtask(self, ctx, inputs):
        payload_parts = []
        for block in ctx.assigned_blocks:
            payload = yield from ctx.hdfs.read_block(block, ctx.worker.name)
            payload_parts.append(self.parser(payload))
        elements = _concat(payload_parts)
        # Deserialization from HDFS bytes into objects.
        n = real_len(elements) * self.scale
        yield ctx.env.timeout(ctx.serializer.deserialize_time(
            n * self.element_nbytes, n))
        return Partition(index=ctx.subtask_index, elements=elements,
                         element_nbytes=self.element_nbytes,
                         scale=self.scale, worker=ctx.worker.name)

    def peek_output(self, blocks, subtask_index: int,
                    worker: Optional[str]) -> Partition:
        """The partition this subtask will produce, with no time charged.

        Block *metadata* carries the payload (the simulation stores real
        sample data by reference), so the functional value of a source
        partition is known the moment blocks are assigned.  The pipelined
        executor uses this "data plane" view to wire downstream consumers
        while the "timing plane" still streams disk reads block by block;
        :meth:`execute_subtask` and :meth:`execute_streaming` return a
        bit-identical partition.
        """
        elements = _concat([self.parser(b.payload) for b in blocks])
        return Partition(index=subtask_index, elements=elements,
                         element_nbytes=self.element_nbytes,
                         scale=self.scale, worker=worker)

    def execute_streaming(self, ctx, stream):
        """Pipelined subtask body: sub-block read + deserialize + publish.

        Identical charges to :meth:`execute_subtask` — the same per-block
        disk spans (their linear portion sliced at sub-block marks, sum
        unchanged) and the same per-block deserialize total (split across
        sub-blocks, last absorbing rounding) — but each sub-block is
        published into ``stream`` the moment its bytes are host-resident
        *and* its deserialize share has been charged, so downstream
        operators overlap with the read.  A side "reader" process charges
        the disk/network time and runs at most one HDFS block ahead of
        publication (bounded read-ahead); the publish loop stalls on
        backpressure when the bounded queue is full.
        """
        from repro.common.simclock import Event

        env = ctx.env
        blocks = ctx.assigned_blocks
        # Recover the per-HDFS-block sub-chunk grouping from the stream's
        # plan (the executor built that plan by splitting exactly these
        # blocks): per block, the chunk marks as offsets within the block.
        eps = 1e-6 * max(1.0, stream.total_nbytes)
        groups: List[tuple] = []   # (first chunk index, marks within block)
        offsets: List[float] = []  # cumulative bytes before each block
        chunk, base = 0, 0.0
        for block in blocks:
            end = base + block.nbytes
            first, marks = chunk, []
            while (chunk < stream.n_blocks
                   and stream.cum_nbytes(chunk + 1) <= end + eps):
                marks.append(stream.cum_nbytes(chunk + 1) - base)
                chunk += 1
            groups.append((first, marks))
            offsets.append(base)
            base = end
        # Data plane is eager (replica payloads are held by reference on
        # block metadata), so every block's deserialize charge is known
        # before its read even starts — required to publish mid-read.
        parsed = [self.parser(b.payload) for b in blocks]
        deser = []
        for p in parsed:
            n = real_len(p) * self.scale
            deser.append(ctx.serializer.deserialize_time(
                n * self.element_nbytes, n))

        state = {"avail": 0.0, "err": None, "evt": Event(env)}

        def _notify():
            evt = state["evt"]
            state["evt"] = Event(env)
            if not evt.triggered:
                evt.succeed()

        def reader():
            try:
                for b_idx, block in enumerate(blocks):
                    first, marks = groups[b_idx]
                    if first < stream.n_blocks:
                        # Bounded read-ahead: hold the next block's read
                        # until its first sub-block could be published.
                        yield stream.reserve(first)

                    def on_chunk(cum, _base=offsets[b_idx]):
                        state["avail"] = _base + cum
                        _notify()

                    yield from ctx.hdfs.read_block(
                        block, ctx.worker.name, (marks, on_chunk))
                    state["avail"] = offsets[b_idx] + block.nbytes
                    _notify()
            except BaseException as exc:  # noqa: BLE001 — forwarded
                state["err"] = exc
                _notify()

        env.process(reader(),
                    name=f"{self.name}[{ctx.subtask_index}]:reader")

        for b_idx, block in enumerate(blocks):
            first, marks = groups[b_idx]
            charged = 0.0
            span = block.nbytes or 1.0
            for j, mark in enumerate(marks):
                while (state["err"] is None
                       and state["avail"] + eps < offsets[b_idx] + mark):
                    yield state["evt"]
                if state["err"] is not None:
                    raise state["err"]
                target = (deser[b_idx] if j == len(marks) - 1
                          else deser[b_idx] * mark / span)
                if target > charged:
                    yield env.timeout(target - charged)
                    charged = target
                yield from ctx.stream_reserve(stream, first + j)
                stream.publish(first + j)
        stream.close()
        elements = _concat(parsed)
        return Partition(index=ctx.subtask_index, elements=elements,
                         element_nbytes=self.element_nbytes,
                         scale=self.scale, worker=ctx.worker.name)


def _concat(payloads: List[Any]) -> Any:
    if not payloads:
        return []
    if all(isinstance(p, np.ndarray) for p in payloads):
        return payloads[0] if len(payloads) == 1 else np.concatenate(payloads)
    out: List[Any] = []
    for p in payloads:
        out.extend(list(p))
    return out


# ---------------------------------------------------------------------------
# Element-wise transforms
# ---------------------------------------------------------------------------

class _ElementWise(Operator):
    """Shared machinery for map/filter/flatMap: iterator-model CPU execution."""

    def __init__(self, source: Operator, udf: Callable, cost: OpCost,
                 parallelism: Optional[int] = None, name: str = "element-wise"):
        super().__init__(name, [source], parallelism,
                         [ShipStrategy.FORWARD], cost)
        self.udf = udf

    def _transform(self, elements: Any) -> Any:
        raise NotImplementedError

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from charge_udf_compute(ctx, self.cost, part.nominal_count,
                                      part.nominal_nbytes, self.udf)
        return self.functional_output(part, ctx.subtask_index,
                                      ctx.worker.name)

    def functional_output(self, part: Partition, subtask_index: int,
                          worker: Optional[str]) -> Partition:
        """Apply the transform with no simulated time charged.

        The pipelined executor evaluates this early (UDFs are pure in the
        simulation) so downstream consumers can be wired up while this
        operator's timing plane is still streaming; the subtask's own
        :meth:`execute_subtask` produces a bit-identical partition.
        """
        out_elements = self._transform(part.elements)
        out_scale = self._output_scale(part, out_elements)
        return Partition(index=subtask_index, elements=out_elements,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=out_scale, worker=worker)

    def _output_scale(self, part: Partition, out_elements: Any) -> float:
        real_out = real_len(out_elements)
        if self.cost.selectivity is None or real_out == 0:
            return part.scale
        # Keep nominal_out = nominal_in * selectivity even when the sample's
        # real selectivity differs.
        nominal_out = part.nominal_count * self.cost.selectivity
        return nominal_out / real_out


class MapOp(_ElementWise):
    """``map``: one-in one-out element transform."""

    def _transform(self, elements):
        return apply_map(elements, self.udf)


class FilterOp(_ElementWise):
    """``filter``: keep elements satisfying the predicate."""

    def _transform(self, elements):
        return apply_filter(elements, self.udf)


class FlatMapOp(_ElementWise):
    """``flatMap``: zero-or-more-out element transform."""

    def _transform(self, elements):
        return apply_flat_map(elements, self.udf)


class MapPartitionOp(Operator):
    """``mapPartition``: the UDF sees the whole partition at once.

    This is the CPU-side analogue of the block-processing model — and the
    operator GFlink's ``gpuMapPartition`` overrides (paper Algorithm 3.1).
    """

    def __init__(self, source: Operator, udf: Callable, cost: OpCost,
                 parallelism: Optional[int] = None,
                 name: str = "map-partition"):
        super().__init__(name, [source], parallelism,
                         [ShipStrategy.FORWARD], cost)
        self.udf = udf

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from charge_udf_compute(ctx, self.cost, part.nominal_count,
                                      part.nominal_nbytes, self.udf)
        out_elements = self.udf(part.elements)
        # Map-style partition functions (one out per in) keep the input's
        # nominal scaling; aggregating ones (partial sums, histograms) emit
        # *real* records that must not be scaled up.  cost.selectivity
        # overrides the heuristic when set.
        out_real = real_len(out_elements)
        if self.cost.selectivity is not None and out_real:
            scale = part.nominal_count * self.cost.selectivity / out_real
        elif out_real == part.real_count:
            scale = part.scale
        else:
            scale = 1.0
        return Partition(index=ctx.subtask_index, elements=out_elements,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=scale, worker=ctx.worker.name)


# ---------------------------------------------------------------------------
# Keyed / global aggregations
# ---------------------------------------------------------------------------

class KeyedReduceOp(Operator):
    """``groupBy(key).reduce(fn)`` — combinable keyed aggregation.

    The shuffle path applies ``fn`` as a pre-combiner on the producer side
    (Flink's combinable GroupReduce), so only one record per key per producer
    partition crosses the network — this is why KMeans "only shuffles centers
    in each iteration" (paper §6.5).
    """

    def __init__(self, source: Operator, key_fn: Callable,
                 reduce_fn: Callable, cost: OpCost,
                 parallelism: Optional[int] = None,
                 combinable: bool = True, name: str = "keyed-reduce"):
        super().__init__(name, [source], parallelism,
                         [ShipStrategy.HASH], cost)
        self.key_fn = key_fn
        self.reduce_fn = reduce_fn
        self.combinable = combinable

    def key_fn_for_input(self, i):
        return self.key_fn

    def combiner_for_input(self, i):
        return (self.key_fn, self.reduce_fn) if self.combinable else None

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from charge_udf_compute(ctx, self.cost, part.nominal_count,
                                      part.nominal_nbytes,
                                      self.key_fn, self.reduce_fn)
        # Vectorized key/reduce over a columnar payload group in bulk and
        # stack reduced rows back into a block (zero-copy continues
        # downstream); otherwise this is the classic per-row group+fold.
        out = apply_grouped_reduce(part.elements, self.key_fn,
                                   self.reduce_fn)
        # One output record per key: the nominal count collapses to the real
        # group count (keys are not sub-sampled by scaling).
        return Partition(index=ctx.subtask_index, elements=out,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=1.0, worker=ctx.worker.name)


class GroupReduceOp(Operator):
    """``groupBy(key).reduce_group(fn)`` — full-group function, not combinable."""

    def __init__(self, source: Operator, key_fn: Callable,
                 group_fn: Callable, cost: OpCost,
                 parallelism: Optional[int] = None,
                 name: str = "group-reduce"):
        super().__init__(name, [source], parallelism,
                         [ShipStrategy.HASH], cost)
        self.key_fn = key_fn
        self.group_fn = group_fn

    def key_fn_for_input(self, i):
        return self.key_fn

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from charge_udf_compute(ctx, self.cost, part.nominal_count,
                                      part.nominal_nbytes,
                                      self.key_fn, self.group_fn)
        groups = group_elements(part.elements, self.key_fn)
        out = []
        for key, members in groups.items():
            result = self.group_fn(key, members)
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return Partition(index=ctx.subtask_index, elements=out,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=1.0, worker=ctx.worker.name)


class ReduceOp(Operator):
    """Global ``reduce``: local partial fold, then final fold on one subtask."""

    def __init__(self, source: Operator, reduce_fn: Callable, cost: OpCost,
                 name: str = "reduce"):
        super().__init__(name, [source], 1, [ShipStrategy.GATHER], cost)
        self.reduce_fn = reduce_fn

    def combiner_for_input(self, i):
        # Gather with pre-fold: each producer sends a single partial.
        return ((lambda x: 0), self.reduce_fn)

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from charge_udf_compute(ctx, self.cost, part.nominal_count,
                                      part.nominal_nbytes, self.reduce_fn)
        result = apply_reduce(part.elements, self.reduce_fn)
        out = [] if result is None else [result]
        return Partition(index=0, elements=out,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=1.0, worker=ctx.worker.name)


class JoinOp(Operator):
    """Hash equi-join of two datasets.

    Both sides are hash-shuffled on their keys; each subtask builds a hash
    table on the (smaller) left side and probes with the right side.
    """

    def __init__(self, left: Operator, right: Operator,
                 left_key: Callable, right_key: Callable,
                 join_fn: Callable, cost: OpCost,
                 parallelism: Optional[int] = None, name: str = "join"):
        super().__init__(name, [left, right], parallelism,
                         [ShipStrategy.HASH, ShipStrategy.HASH], cost)
        self.left_key = left_key
        self.right_key = right_key
        self.join_fn = join_fn

    def key_fn_for_input(self, i):
        return self.left_key if i == 0 else self.right_key

    def execute_subtask(self, ctx, inputs):
        left, right = inputs
        total = left.nominal_count + right.nominal_count
        yield from ctx.charge_compute(total, self.cost.flops_per_element,
                                      self.cost.element_overhead_s)
        table = group_elements(left.elements, self.left_key)
        out = []
        for r in right.elements:
            for l in table.get(self.right_key(r), ()):
                out.append(self.join_fn(l, r))
        scale = max(left.scale, right.scale)
        return Partition(index=ctx.subtask_index, elements=out,
                         element_nbytes=self.out_element_nbytes(left),
                         scale=scale, worker=ctx.worker.name)


class UnionOp(Operator):
    """``union``: concatenate two datasets of the same type.

    Flink unions are free at run time (no shuffle): each subtask forwards
    one partition of either input.  We model the same: the left input maps
    onto the first ``p_left`` subtasks, the right onto the rest.
    """

    def __init__(self, left: Operator, right: Operator,
                 name: str = "union"):
        super().__init__(name, [left, right], None,
                         [ShipStrategy.UNION_LEFT, ShipStrategy.UNION_RIGHT])

    def execute_subtask(self, ctx, inputs):
        parts = [p for p in inputs if p is not None]
        if not parts:
            return Partition(index=ctx.subtask_index, elements=[],
                             element_nbytes=8.0, scale=1.0,
                             worker=ctx.worker.name)
        (part,) = parts
        yield from ctx.charge_compute(0.0, 0.0)
        moved = part.derive(part.elements)
        moved.index = ctx.subtask_index
        moved.worker = ctx.worker.name
        return moved


class DistinctOp(Operator):
    """``distinct``: deduplicate by key (hash shuffle + per-key pick-first)."""

    def __init__(self, source: Operator, key_fn: Optional[Callable] = None,
                 cost: OpCost = OpCost(), parallelism: Optional[int] = None,
                 name: str = "distinct"):
        super().__init__(name, [source], parallelism,
                         [ShipStrategy.HASH], cost)
        self.key_fn = key_fn or (lambda x: x)

    def key_fn_for_input(self, i):
        return self.key_fn

    def combiner_for_input(self, i):
        # Pre-deduplicate on the producer side: keep the first of each key.
        return (self.key_fn, lambda a, b: a)

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from charge_udf_compute(ctx, self.cost, part.nominal_count,
                                      part.nominal_nbytes, self.key_fn)
        groups = group_elements(part.elements, self.key_fn)
        out = [members[0] for members in groups.values()]
        return Partition(index=ctx.subtask_index, elements=out,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=1.0, worker=ctx.worker.name)


class FirstNOp(Operator):
    """``first(n)``: any ``n`` elements (gathered to one subtask)."""

    def __init__(self, source: Operator, n: int, name: Optional[str] = None):
        super().__init__(name or f"first({n})", [source], 1,
                         [ShipStrategy.GATHER])
        if n < 1:
            raise ConfigError(f"first(n) needs n >= 1, got {n}")
        self.n = n

    def combiner_for_input(self, i):
        # Each producer only ships its first n elements.
        n = self.n
        return lambda bucket: list(bucket[:n])

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from ctx.charge_compute(min(part.real_count, self.n), 0.0)
        out = list(part.elements)[:self.n]
        return Partition(index=0, elements=out,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=1.0, worker=ctx.worker.name)


class SortPartitionOp(Operator):
    """``sortPartition``: sort each partition locally (no shuffle).

    Charged at ``n log2 n`` comparisons per partition under the iterator
    model — Flink's in-memory sort over managed pages.
    """

    def __init__(self, source: Operator, key_fn: Optional[Callable] = None,
                 reverse: bool = False, cost: OpCost = OpCost(),
                 parallelism: Optional[int] = None,
                 name: str = "sort-partition"):
        super().__init__(name, [source], parallelism,
                         [ShipStrategy.FORWARD], cost)
        self.key_fn = key_fn
        self.reverse = reverse

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        n = max(part.nominal_count, 1.0)
        comparisons = n * math.log2(n) if n > 1 else 0.0
        yield from ctx.charge_compute(
            comparisons, self.cost.flops_per_element,
            self.cost.element_overhead_s)
        elements = part.elements
        if isinstance(elements, np.ndarray):
            if self.key_fn is None:
                out = np.sort(elements)
            else:
                keys = np.asarray([self.key_fn(x) for x in elements])
                out = elements[np.argsort(keys, kind="stable")]
            if self.reverse:
                out = out[::-1]
        else:
            out = sorted(elements, key=self.key_fn, reverse=self.reverse)
        return Partition(index=ctx.subtask_index, elements=out,
                         element_nbytes=part.element_nbytes,
                         scale=part.scale, worker=ctx.worker.name)


class CrossOp(Operator):
    """``cross``: Cartesian product — the right side is broadcast."""

    def __init__(self, left: Operator, right: Operator,
                 cross_fn: Callable = lambda l, r: (l, r),
                 cost: OpCost = OpCost(), parallelism: Optional[int] = None,
                 name: str = "cross"):
        super().__init__(name, [left, right], parallelism,
                         [ShipStrategy.FORWARD, ShipStrategy.BROADCAST],
                         cost)
        self.cross_fn = cross_fn

    def execute_subtask(self, ctx, inputs):
        left, right = inputs
        pairs = left.nominal_count * max(right.nominal_count, 1.0)
        yield from ctx.charge_compute(pairs, self.cost.flops_per_element,
                                      self.cost.element_overhead_s)
        out = [self.cross_fn(l, r)
               for l in left.elements for r in right.elements]
        real_pairs = max(len(out), 1)
        return Partition(index=ctx.subtask_index, elements=out,
                         element_nbytes=self.out_element_nbytes(left),
                         scale=pairs / real_pairs if out else 1.0,
                         worker=ctx.worker.name)


class CoGroupOp(Operator):
    """``coGroup``: both sides hash-shuffled by key; the UDF sees the two
    groups of each key together."""

    def __init__(self, left: Operator, right: Operator,
                 left_key: Callable, right_key: Callable,
                 cogroup_fn: Callable, cost: OpCost = OpCost(),
                 parallelism: Optional[int] = None, name: str = "co-group"):
        super().__init__(name, [left, right], parallelism,
                         [ShipStrategy.HASH, ShipStrategy.HASH], cost)
        self.left_key = left_key
        self.right_key = right_key
        self.cogroup_fn = cogroup_fn

    def key_fn_for_input(self, i):
        return self.left_key if i == 0 else self.right_key

    def execute_subtask(self, ctx, inputs):
        left, right = inputs
        total = left.nominal_count + right.nominal_count
        yield from ctx.charge_compute(total, self.cost.flops_per_element,
                                      self.cost.element_overhead_s)
        lgroups = group_elements(left.elements, self.left_key)
        rgroups = group_elements(right.elements, self.right_key)
        out = []
        for key in dict.fromkeys(list(lgroups) + list(rgroups)):
            result = self.cogroup_fn(key, lgroups.get(key, []),
                                     rgroups.get(key, []))
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return Partition(index=ctx.subtask_index, elements=out,
                         element_nbytes=self.out_element_nbytes(left),
                         scale=1.0, worker=ctx.worker.name)


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------

class CollectSink(Operator):
    """Gather all elements to the driver (the job's return value)."""

    def __init__(self, source: Operator, name: str = "collect"):
        super().__init__(name, [source], 1, [ShipStrategy.GATHER])

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        # Ship to the master.
        nbytes = part.nominal_nbytes
        yield ctx.env.timeout(ctx.serializer.serialize_time(
            nbytes, part.nominal_count))
        yield from ctx.network.transfer(ctx.worker.name, ctx.master_name,
                                        int(nbytes))
        elements = part.elements
        if isinstance(elements, np.ndarray):
            elements = list(elements)
        return Partition(index=0, elements=list(elements),
                         element_nbytes=part.element_nbytes,
                         scale=part.scale, worker=ctx.master_name)


class CountSink(Operator):
    """Count elements; only per-partition counts travel to the master."""

    def __init__(self, source: Operator, name: str = "count"):
        super().__init__(name, [source], 1, [ShipStrategy.GATHER])

    def combiner_for_input(self, i):
        from repro.flink.shuffle import COUNT_COMBINER
        return COUNT_COMBINER

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        yield from ctx.network.transfer(ctx.worker.name, ctx.master_name, 8)
        total = float(sum(part.elements))
        return Partition(index=0, elements=[total],
                         element_nbytes=8.0, scale=1.0,
                         worker=ctx.master_name)


class HdfsSink(Operator):
    """Write each partition of the input as one HDFS block."""

    def __init__(self, source: Operator, path: str,
                 parallelism: Optional[int] = None):
        super().__init__(f"hdfs-sink({path})", [source], parallelism,
                         [ShipStrategy.FORWARD])
        self.path = path

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        nbytes = part.nominal_nbytes
        yield ctx.env.timeout(ctx.serializer.serialize_time(
            nbytes, part.nominal_count))
        yield from ctx.hdfs_append(self.path, part.elements, int(nbytes))
        return Partition(index=ctx.subtask_index, elements=[],
                         element_nbytes=0.0, scale=1.0,
                         worker=ctx.worker.name)


def topological_order(sinks: List[Operator]) -> List[Operator]:
    """All operators reachable from ``sinks`` in dependency order."""
    order: List[Operator] = []
    seen: set[int] = set()
    visiting: set[int] = set()

    def visit(op: Operator) -> None:
        if op.uid in seen:
            return
        if op.uid in visiting:
            raise ConfigError(f"cycle in plan at {op!r}")
        visiting.add(op.uid)
        for parent in op.inputs:
            visit(parent)
        visiting.discard(op.uid)
        seen.add(op.uid)
        order.append(op)

    for sink in sinks:
        visit(sink)
    return order
