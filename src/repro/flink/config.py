"""Configuration objects for the Flink substrate and the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.network import NetworkConfig
from repro.hdfs.datanode import DiskConfig


@dataclass(frozen=True)
class CPUSpec:
    """One CPU socket of a worker node.

    The paper's testbed uses an Intel Core i5-4590 (4 cores @ 3.3 GHz).  The
    throughput figure is *sustained scalar* throughput of JVM iterator code,
    not peak SIMD — Flink UDFs run one element at a time through megamorphic
    call sites, which is exactly why the paper's GPU speedups are large.
    """

    name: str = "i5-4590"
    cores: int = 4
    clock_ghz: float = 3.3
    flops_per_core: float = 4.0e9  # sustained scalar FLOP/s in iterator code
    #: Sustained throughput of *vectorized block* operators (tight SIMD
    #: loops over primitive arrays, no per-element virtual calls).  Only
    #: UDFs that opt in via :func:`repro.flink.iterators.vectorized` are
    #: charged at this rate; 4-wide SSE/AVX over the scalar figure matches
    #: what a columnar batch engine sustains on this core.
    simd_flops_per_core: float = 16.0e9

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError(f"cores must be >= 1, got {self.cores}")
        if self.flops_per_core <= 0:
            raise ConfigError("flops_per_core must be positive")
        if self.simd_flops_per_core <= 0:
            raise ConfigError("simd_flops_per_core must be positive")


@dataclass(frozen=True)
class FlinkConfig:
    """Engine calibration constants (DESIGN.md §5).

    All times in seconds, sizes in bytes, rates in bytes or FLOPs per second.
    """

    # Memory management: Flink manages memory in fixed-size pages; GFlink's
    # block size defaults to one page (§5.1 of the paper).
    page_size: int = 32 * 1024
    managed_memory_per_worker: int = 8 * (1 << 30)

    # Iterator execution model: per-element virtual-call + iterator overhead.
    element_overhead_s: float = 120e-9

    # Serialization between JVM objects and bytes (shuffle, heap-path GPU I/O).
    serde_bps: float = 0.8e9
    # Copy between JVM heap and native memory (baseline GPU path only).
    heap_copy_bps: float = 4.0e9

    # Columnar zero-copy exchange (docs/STREAMING_EXECUTOR.md §columnar):
    # when a routed/broadcast exchange carries columnar payloads (NumPy /
    # GStruct SoA regions) and its key extractor is vectorized, partitions
    # ship as raw block regions — no per-row serde; only a per-block
    # descriptor is charged (``shuffle_block_header_s``).  Serde is charged
    # only at the columnar↔row boundary.  Row payloads always take the
    # classic per-record path regardless of this flag.
    columnar_shuffle: bool = True
    # Fixed cost of framing one shipped columnar block (length/dtype/key
    # descriptor) on each side of the wire.
    shuffle_block_header_s: float = 2e-6
    # A single destination payload larger than this (nominal bytes) is
    # spilled through the simulated HDFS instead of held in exchange
    # buffers: the producer writes the region, the consumer reads it back
    # (charging disk + replication instead of a direct wire push).
    shuffle_spill_nbytes: float = 256 * 2**20

    # Vectorized CPU operators: UDFs marked with
    # ``repro.flink.iterators.vectorized`` are charged the *block* model —
    # one dispatch per block (``block_overhead_s``) plus SIMD-rate
    # arithmetic — instead of the per-element iterator model.  Functional
    # results are bit-identical; only the charge model changes.
    vectorized_ops: bool = True
    # Per-block dispatch overhead of a vectorized operator (loop setup,
    # bounds checks, one virtual call per block instead of per element).
    block_overhead_s: float = 5e-6

    # Job-level fixed overheads (Observation 3 in §6.3: these dominate small
    # inputs and cap the speedup of short jobs).
    job_submit_s: float = 0.6
    task_schedule_s: float = 1.5e-3
    task_deploy_s: float = 2.0e-3

    # Fault tolerance.
    max_task_retries: int = 3
    # Worker failure detection: the master expects a heartbeat from every
    # TaskManager each interval and declares a worker dead once
    # ``heartbeat_timeout_s`` passes without one.  Detection runs only while
    # a chaos schedule is installed (see repro.flink.chaos) so fault-free
    # simulations schedule no extra events and keep a bit-identical clock.
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 5.0
    # Retry back-off for failed attempts: attempt k waits
    # ``base * 2**(k-1)`` capped at ``retry_backoff_max_s``, stretched by a
    # deterministic jitter in [0, retry_backoff_jitter] derived from
    # ``retry_jitter_seed`` and the subtask identity.  The default base of 0
    # disables back-off entirely (immediate retry — the pre-chaos behavior).
    retry_backoff_base_s: float = 0.0
    retry_backoff_max_s: float = 30.0
    retry_backoff_jitter: float = 0.1
    retry_jitter_seed: int = 20160816

    # Elastic membership (repro.flink.rebalance): when a worker joins
    # mid-run, spread already-materialized cached partitions onto it over
    # the zero-copy wire so iterative jobs use the new capacity without
    # recomputation.  Draining always migrates regardless of this flag.
    rebalance_on_join: bool = True

    # Operator chaining: fuse element-wise operator chains into one task
    # (Flink's default behavior); see repro.flink.optimizer.
    enable_chaining: bool = True
    # GPU operator chaining: fuse consecutive GPU operators into one GWork
    # with device-resident intermediates (saves a D2H+H2D round-trip per
    # fused boundary); see repro.flink.optimizer and repro.core.gdst.
    enable_gpu_chaining: bool = True

    # Structured tracing (repro.obs): record spans/instants from the whole
    # stack for Chrome-trace export.  Off by default (tests); benchmarks and
    # the `repro trace` CLI turn it on.  Tracing never schedules simulation
    # events, so the simulated clock is identical either way.
    enable_tracing: bool = False

    # Online monitoring (repro.obs.monitor, docs/OBSERVABILITY.md): sample
    # metrics into windows of simulated time, track SLOs/error budgets,
    # evaluate alert rules and score health while the job runs.  Off by
    # default (tests); `repro monitor` turns it on.  The monitor is fed
    # synchronously from instrumented call sites and never schedules
    # simulation events, so the simulated clock is identical either way.
    enable_monitoring: bool = False
    # Width of one sampling window, in simulated seconds.
    monitor_window_s: float = 1.0
    # Windows retained per series (older points are dropped).
    monitor_retention_windows: int = 720

    # Flight recorder (repro.obs.flightrecorder): retain a bounded ring of
    # recent spans + closed metric windows and dump a post-mortem bundle
    # (JSON) when an alert fires or the chaos engine injects a fault.
    # Purely passive — bounded deques plus dump-time host file I/O — so
    # the simulated clock stays bit-identical either way.
    enable_flight_recorder: bool = False
    # Directory bundles are written to (None keeps them in memory only).
    flight_recorder_dir: Optional[str] = None
    # Ring capacities and the bundle cap (a runaway alert storm must not
    # fill the disk).
    flight_recorder_spans: int = 512
    flight_recorder_windows: int = 512
    flight_recorder_max_bundles: int = 16

    # Execution architecture (docs/STREAMING_EXECUTOR.md).  "staged" runs
    # one operator wave at a time with a full barrier between operators;
    # "pipelined" streams HDFS blocks through whole pipeline regions with a
    # bounded per-operator block queue, overlapping read / CPU / H2D /
    # kernel / D2H within a region.  Job *results* are bit-identical
    # between the two; only the simulated clock differs.
    executor: str = "pipelined"
    # Bounded block-queue depth between adjacent pipelined operators: a
    # producer that runs this many blocks ahead of its slowest consumer
    # stalls (backpressure) until credits return.
    pipeline_queue_blocks: int = 4
    # Streaming granularity: HDFS blocks are far coarser (tens to hundreds
    # of MB) than useful pipeline quanta, so the source splits each block's
    # read into sub-blocks of at most this many bytes and publishes them as
    # the read progresses.  Smaller values overlap more but wake consumers
    # more often; bench_pipeline.py sweeps this knob.
    pipeline_block_nbytes: float = 8 * 2**20

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        if self.serde_bps <= 0 or self.heap_copy_bps <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.executor not in ("staged", "pipelined"):
            raise ConfigError(
                f"executor must be 'staged' or 'pipelined': {self.executor!r}")
        if self.pipeline_queue_blocks < 1:
            raise ConfigError("pipeline_queue_blocks must be >= 1")
        if self.monitor_window_s <= 0:
            raise ConfigError("monitor_window_s must be positive")
        if self.monitor_retention_windows < 1:
            raise ConfigError("monitor_retention_windows must be >= 1")
        if self.flight_recorder_spans < 1 or \
                self.flight_recorder_windows < 1 or \
                self.flight_recorder_max_bundles < 1:
            raise ConfigError("flight recorder capacities must be >= 1")
        if self.pipeline_block_nbytes <= 0:
            raise ConfigError("pipeline_block_nbytes must be positive")
        if self.shuffle_block_header_s < 0:
            raise ConfigError("shuffle_block_header_s must be >= 0")
        if self.shuffle_spill_nbytes <= 0:
            raise ConfigError("shuffle_spill_nbytes must be positive")
        if self.block_overhead_s < 0:
            raise ConfigError("block_overhead_s must be >= 0")


@dataclass
class RuntimeTuning:
    """Online-tunable runtime knobs (the only *mutable* config surface).

    :class:`FlinkConfig` is frozen — a run's calibration constants never
    drift — but elastic operation needs a few knobs the
    :class:`~repro.flink.autoscaler.Autoscaler` can retune *mid-run*:
    streaming granularity, read-ahead depth and placement bias.  Every
    consumer reads these through ``cluster.tuning`` instead of the frozen
    config; they affect the simulated clock only, never functional results.
    """

    #: Streaming sub-block granularity (initially
    #: ``FlinkConfig.pipeline_block_nbytes``); the autoscaler widens this
    #: when PCIe descriptor overhead dominates (``pcie_bound``).
    pipeline_block_nbytes: float = 8 * 2**20
    #: Bounded block-queue depth / source read-ahead (initially
    #: ``FlinkConfig.pipeline_queue_blocks``); raised under ``hdfs_bound``.
    pipeline_queue_blocks: int = 4
    #: Bias source placement toward replica holders even when they are
    #: busier (``pcie_bound`` → keep GPU work next to its cached input).
    prefer_local_placement: bool = False

    @classmethod
    def from_flink(cls, flink: FlinkConfig) -> "RuntimeTuning":
        return cls(pipeline_block_nbytes=flink.pipeline_block_nbytes,
                   pipeline_queue_blocks=flink.pipeline_queue_blocks)


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    ``gpus_per_worker`` is a list of GPU spec names (see
    :mod:`repro.gpu.specs`); the plain Flink substrate ignores it, the GFlink
    runtime attaches a GPUManager per worker from it.
    """

    n_workers: int = 10
    cpu: CPUSpec = field(default_factory=CPUSpec)
    gpus_per_worker: tuple[str, ...] = ()
    slots_per_worker: int | None = None  # default: one per CPU core
    flink: FlinkConfig = field(default_factory=FlinkConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    hdfs_replication: int = 2

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {self.n_workers}")
        slots = self.slots_per_worker
        if slots is not None and slots < 1:
            raise ConfigError(f"slots_per_worker must be >= 1, got {slots}")

    @property
    def slots(self) -> int:
        """Task slots per worker (defaults to the CPU core count)."""
        return self.slots_per_worker or self.cpu.cores

    @property
    def total_slots(self) -> int:
        """Task slots across the whole cluster."""
        return self.n_workers * self.slots

    def worker_names(self) -> list[str]:
        """Stable worker node names, ``worker0..workerN-1``."""
        return [f"worker{i}" for i in range(self.n_workers)]
