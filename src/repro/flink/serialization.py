"""Serialization cost model.

The engine never needs to *actually* serialize (everything lives in one
Python process), but serde time is a first-order term in the paper's
analysis: shuffles serialize on the sender and deserialize on the receiver,
and the naive JVM-heap GPU path (§2.3/§3.1) pays object→buffer conversion
that GFlink's GStruct layout avoids.  This module centralizes those charges.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SerdeStats:
    """Accumulated serialization work (for metrics and assertions)."""

    bytes_serialized: float = 0.0
    bytes_deserialized: float = 0.0
    bytes_zero_copy: float = 0.0


class Serializer:
    """Charges serialization/deserialization time at a calibrated rate."""

    def __init__(self, serde_bps: float, record_overhead_s: float = 15e-9,
                 block_header_s: float = 2e-6):
        self.serde_bps = serde_bps
        self.record_overhead_s = record_overhead_s
        self.block_header_s = block_header_s
        self.bytes_serialized = 0.0
        self.bytes_deserialized = 0.0
        self.bytes_zero_copy = 0.0

    def serialize_time(self, nbytes: float, nrecords: float = 0.0) -> float:
        """Seconds to turn ``nrecords`` objects totaling ``nbytes`` into bytes."""
        self.bytes_serialized += nbytes
        return nbytes / self.serde_bps + nrecords * self.record_overhead_s

    def deserialize_time(self, nbytes: float, nrecords: float = 0.0) -> float:
        """Seconds to materialize objects from ``nbytes`` of wire data."""
        self.bytes_deserialized += nbytes
        return nbytes / self.serde_bps + nrecords * self.record_overhead_s

    def zero_copy_time(self, nbytes: float, n_blocks: int = 1) -> float:
        """Seconds to frame ``n_blocks`` columnar blocks totaling ``nbytes``.

        The zero-copy exchange path: the payload's SoA byte regions go on
        the wire verbatim, so no per-byte or per-record serde is charged —
        only a fixed descriptor cost per framed block (length, dtype, key
        range).  Bytes are tracked separately from serde bytes so tests
        and metrics can assert the serde path was actually bypassed.
        """
        self.bytes_zero_copy += nbytes
        return n_blocks * self.block_header_s

    def stats(self) -> SerdeStats:
        """Snapshot of accumulated serde byte counts."""
        return SerdeStats(self.bytes_serialized, self.bytes_deserialized,
                          self.bytes_zero_copy)
