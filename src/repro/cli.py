"""Command-line interface: run workloads and inspect the calibration.

Examples::

    python -m repro list
    python -m repro run kmeans --mode gpu --workers 10 --iterations 8
    python -m repro run spmv --mode both --nominal 1e7
    python -m repro trace wordcount --out traces/wordcount.json
    python -m repro metrics kmeans --mode gpu
    python -m repro chaos wordcount --kill worker1@40 --gpu-fail worker0:0@10
    python -m repro monitor wordcount --kill worker1@40 \\
        --expect-alert worker_unhealthy --dashboard-out dash.html
    python -m repro metrics kmeans --format prom
    python -m repro profile traces/wordcount-gpu.json
    python -m repro profile traces/run.json --baseline traces/base.json
    python -m repro profile traces/run.json --baseline traces/base.json \\
        --explain
    python -m repro postmortem traces/postmortems/
    python -m repro specs
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.gpu.specs import SPECS
from repro.obs.export import collect_cluster, write_chrome_trace, \
    write_metrics
from repro.workloads import (
    ConnectedComponentsWorkload,
    KMeansWorkload,
    LinearRegressionWorkload,
    PageRankWorkload,
    PointAddWorkload,
    SpMVWorkload,
    WordCountWorkload,
)
from repro.workloads.base import Workload

#: name -> (workload class, default nominal size, size parameter name)
WORKLOADS: Dict[str, tuple] = {
    "kmeans": (KMeansWorkload, 210e6, "nominal_elements"),
    "linreg": (LinearRegressionWorkload, 210e6, "nominal_elements"),
    "spmv": (SpMVWorkload, 8e9 / 192.0, "nominal_elements"),
    "pagerank": (PageRankWorkload, 15e6, "nominal_pages"),
    "concomp": (ConnectedComponentsWorkload, 15e6, "nominal_pages"),
    "wordcount": (WordCountWorkload, 4e9, "nominal_elements"),
    "pointadd": (PointAddWorkload, 100e6, "nominal_elements"),
}


def _add_run_options(p: argparse.ArgumentParser, single_mode: bool) -> None:
    """Workload-run options shared by ``run``, ``trace`` and ``metrics``."""
    p.add_argument("workload", choices=sorted(WORKLOADS))
    if single_mode:
        p.add_argument("--mode", choices=("cpu", "gpu"), default="gpu")
    else:
        p.add_argument("--mode", choices=("cpu", "gpu", "both"),
                       default="both")
    p.add_argument("--workers", type=int, default=10,
                   help="slave nodes (default: the paper's 10)")
    p.add_argument("--gpus", default="c2050,c2050",
                   help="comma-separated GPU specs per worker")
    p.add_argument("--iterations", type=int, default=None)
    p.add_argument("--nominal", type=float, default=None,
                   help="nominal input size (elements or pages)")
    p.add_argument("--real", type=int, default=12_000,
                   help="in-memory sample size")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--executor", choices=("staged", "pipelined"),
                   default="pipelined",
                   help="execution architecture: barriered stage-at-a-time "
                        "or streaming block-pipelined (default)")
    p.add_argument("--vectorized", action="store_true",
                   help="run block-vectorized CPU operators: same results, "
                        "SIMD block cost model + zero-copy columnar "
                        "exchanges (wordcount/kmeans/pagerank)")


def _add_fault_options(p: argparse.ArgumentParser) -> None:
    """Fault-schedule options shared by ``chaos`` and ``monitor``."""
    p.add_argument("--kill", action="append", default=[],
                   metavar="WORKER@T",
                   help="kill WORKER at simulated time T (e.g. worker1@40)")
    p.add_argument("--gpu-fail", action="append", default=[],
                   metavar="WORKER[:DEV]@T[:KIND]",
                   help="fault a GPU at time T; KIND is gpu-ecc "
                        "(default), gpu-oom or gpu-hang")
    p.add_argument("--pcie-fault", action="append", default=[],
                   metavar="WORKER[:DEV]@T[:KIND]",
                   help="fault a PCIe transfer at time T; KIND is "
                        "pcie-corrupt (default) or pcie-timeout")
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="seed for the random fault schedule "
                        "(default: the run seed)")
    p.add_argument("--duration", type=float, default=120.0,
                   help="random-fault window in simulated seconds")
    p.add_argument("--worker-kill-rate", type=float, default=0.0,
                   help="random worker kills per simulated second")
    p.add_argument("--gpu-fault-rate", type=float, default=0.0,
                   help="random GPU faults per simulated second")
    p.add_argument("--pcie-fault-rate", type=float, default=0.0,
                   help="random PCIe faults per simulated second")
    p.add_argument("--backoff", type=float, default=0.05,
                   help="retry back-off base seconds (0 disables)")
    p.add_argument("--churn", action="append", default=[],
                   metavar="EVENT",
                   help="membership event: join@T (auto-named), "
                        "join:NAME@T, drain:WORKER@T or leave:WORKER@T")
    p.add_argument("--join-rate", type=float, default=0.0,
                   help="random worker joins per simulated second")
    p.add_argument("--leave-rate", type=float, default=0.0,
                   help="random worker departures per simulated second")
    p.add_argument("--drain-fraction", type=float, default=0.5,
                   help="probability a random departure is a graceful "
                        "drain rather than an abrupt leave")
    p.add_argument("--min-workers", type=int, default=1,
                   help="random departures never shrink the cluster "
                        "below this")
    p.add_argument("--postmortem-dir", default=None,
                   help="arm the flight recorder: dump a post-mortem "
                        "bundle here on every fault injection (and, under "
                        "`monitor`, every alert firing)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GFlink reproduction: simulated CPU-GPU cluster runs")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload")
    _add_run_options(run, single_mode=False)
    run.add_argument("--autoscale", action="store_true",
                     help="run the profiler-driven autoscaler: add workers "
                          "under slot pressure, retune the pipeline online")
    run.add_argument("--max-workers", type=int, default=None,
                     help="autoscaler ceiling on cluster size (default: "
                          "2x the starting worker count)")

    trace = sub.add_parser(
        "trace", help="run one workload with tracing, write a Chrome trace")
    _add_run_options(trace, single_mode=True)
    trace.add_argument("--out", default=None,
                       help="trace path (default traces/<workload>-<mode>"
                            ".json)")
    trace.add_argument("--metrics-out", default=None,
                       help="also write the metrics snapshot JSON here")

    metrics = sub.add_parser(
        "metrics", help="run one workload, print/write its metrics snapshot")
    _add_run_options(metrics, single_mode=True)
    metrics.add_argument("--out", default=None,
                         help="write the snapshot here instead of printing")
    metrics.add_argument("--format", choices=("text", "json", "prom"),
                         default=None,
                         help="snapshot format: text (default when "
                              "printing), json (default with --out) or "
                              "prom (Prometheus text exposition)")

    chaos = sub.add_parser(
        "chaos",
        help="run one workload under a fault schedule, verify the result "
             "against a fault-free run, print a resilience report")
    _add_run_options(chaos, single_mode=True)
    _add_fault_options(chaos)
    chaos.add_argument("--no-cpu-fallback", action="store_true",
                       help="fail GPU operators instead of degrading to CPU "
                            "when every device is blacklisted")
    chaos.add_argument("--out", default=None,
                       help="also write the chaos run's Chrome trace here")

    monitor = sub.add_parser(
        "monitor",
        help="run one workload with the online monitor (optionally under "
             "a fault schedule): SLOs, alerts, health, HTML dashboard")
    _add_run_options(monitor, single_mode=True)
    _add_fault_options(monitor)
    monitor.add_argument("--window", type=float, default=1.0,
                         help="monitor window width in simulated seconds")
    monitor.add_argument("--slo", action="append", default=[],
                         metavar="KIND=TARGET",
                         help="set an SLO target and gate on it: "
                              "pNN=SECONDS (job latency, e.g. p99=30) or "
                              "availability=FRAC (task success, e.g. "
                              "availability=0.995); exit 1 on violation")
    monitor.add_argument("--expect-alert", action="append", default=[],
                         metavar="RULE",
                         help="require this alert rule to have fired AND "
                              "resolved during the run; exit 1 otherwise")
    monitor.add_argument("--summary-out", default=None,
                         help="write the monitor summary JSON here")
    monitor.add_argument("--dashboard-out", default=None,
                         help="write the self-contained HTML dashboard "
                              "here")

    profile = sub.add_parser(
        "profile",
        help="analyze a Chrome trace: critical path, bottlenecks, "
             "utilization; optionally gate against a baseline")
    profile.add_argument("trace",
                         help="Chrome trace JSON (from `repro trace`) or an "
                              "already-computed profile summary JSON")
    profile.add_argument("--baseline", default=None,
                         help="baseline trace or summary to compare "
                              "against; exit 1 on regression")
    profile.add_argument("--json", dest="json_out", default=None,
                         help="write the machine-readable summary here")
    profile.add_argument("--threshold", action="append", default=[],
                         metavar="METRIC=REL",
                         help="override a relative regression threshold, "
                              "e.g. makespan_s=0.2 or critical_path=0.5")
    profile.add_argument("--quiet", action="store_true",
                         help="suppress the text report (gate only)")
    profile.add_argument("--explain", action="store_true",
                         help="with --baseline: attribute the makespan "
                              "delta to a ranked list of causes")
    profile.add_argument("--explain-out", default=None,
                         help="write the machine-readable explanation "
                              "JSON here (implies --explain)")

    postmortem = sub.add_parser(
        "postmortem",
        help="render flight-recorder post-mortem bundles (a bundle file "
             "or a directory of them)")
    postmortem.add_argument("path",
                            help="a postmortem-*.json file or a directory "
                                 "containing them")
    postmortem.add_argument("--spans", type=int, default=12,
                            help="trace-slice tail length to show per "
                                 "bundle")

    sub.add_parser("list", help="list available workloads")
    sub.add_parser("specs", help="show the GPU spec catalog")
    return parser


def _make_workload(name: str, args) -> Workload:
    cls, default_nominal, size_param = WORKLOADS[name]
    kwargs = {size_param: args.nominal or default_nominal}
    if name in ("pagerank", "concomp"):
        kwargs["real_pages"] = args.real
    else:
        kwargs["real_elements"] = args.real
    if args.iterations is not None and name != "wordcount":
        kwargs["iterations"] = args.iterations
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if getattr(args, "vectorized", False):
        kwargs["vectorized"] = True
    return cls(**kwargs)


def _cmd_run(args, out) -> int:
    gpus = tuple(g for g in args.gpus.split(",") if g)
    modes = ("cpu", "gpu") if args.mode == "both" else (args.mode,)
    results = {}
    scalers = {}
    for mode in modes:
        config = ClusterConfig(n_workers=args.workers, cpu=CPUSpec(),
                               gpus_per_worker=gpus if mode == "gpu" else
                               gpus,
                               flink=FlinkConfig(executor=args.executor))
        cluster = GFlinkCluster(config)
        if getattr(args, "autoscale", False):
            from repro.flink.autoscaler import Autoscaler, AutoscalerPolicy
            policy = AutoscalerPolicy(
                max_workers=args.max_workers or 2 * args.workers)
            scalers[mode] = Autoscaler(cluster, policy)
            scalers[mode].start()
        workload = _make_workload(args.workload, args)
        results[mode] = workload.run(GFlinkSession(cluster), mode)
        if mode in scalers:
            scalers[mode].stop()

    print(f"workload={args.workload} workers={args.workers} "
          f"gpus/worker={list(gpus)}", file=out)
    for mode, result in results.items():
        iters = "  ".join(f"{t:7.2f}" for t in result.iteration_seconds)
        print(f"  {mode:3s} total {result.total_seconds:9.2f} s | "
              f"per-iteration: {iters}", file=out)
        scaler = scalers.get(mode)
        if scaler is not None:
            added = [d for d in scaler.decisions if d.action == "add_worker"]
            print(f"      autoscaler: {len(scaler.decisions)} decisions "
                  f"({len(added)} workers added, final size "
                  f"{len(scaler.cluster.member_names())})", file=out)
            for d in scaler.decisions:
                print(f"        {d.time:7.2f}s {d.signal:<11} -> "
                      f"{d.action} {d.detail}", file=out)
    if len(results) == 2:
        speedup = (results["cpu"].total_seconds
                   / results["gpu"].total_seconds)
        print(f"  speedup: {speedup:.2f}x", file=out)
    return 0


def _traced_run(args):
    """One workload run on a tracing-enabled cluster."""
    gpus = tuple(g for g in args.gpus.split(",") if g)
    config = ClusterConfig(n_workers=args.workers, cpu=CPUSpec(),
                           gpus_per_worker=gpus,
                           flink=FlinkConfig(enable_tracing=True,
                                             executor=args.executor))
    cluster = GFlinkCluster(config)
    workload = _make_workload(args.workload, args)
    result = workload.run(GFlinkSession(cluster), args.mode)
    collect_cluster(cluster.obs.registry, cluster)
    return cluster, result


def _cmd_trace(args, out) -> int:
    cluster, result = _traced_run(args)
    trace_path = args.out or f"traces/{args.workload}-{args.mode}.json"
    write_chrome_trace(cluster.obs.tracer, trace_path)
    tracer = cluster.obs.tracer
    tracks = tracer.track_names()
    lanes = sum(len(threads) for threads in tracks.values())
    print(f"workload={args.workload} mode={args.mode} "
          f"total {result.total_seconds:.2f} s", file=out)
    print(f"trace: {trace_path} ({len(tracer)} events, "
          f"{len(tracks)} processes, {lanes} lanes) — open in "
          f"https://ui.perfetto.dev", file=out)
    if args.metrics_out:
        write_metrics(cluster.obs.registry, args.metrics_out)
        print(f"metrics: {args.metrics_out}", file=out)
    return 0


def _cmd_metrics(args, out) -> int:
    cluster, result = _traced_run(args)
    fmt = args.format or ("json" if args.out else "text")
    registry = cluster.obs.registry
    if fmt == "prom":
        # Prometheus scrapes carry no banner line: the exposition must
        # stand alone (the round-trip test parses CLI output verbatim).
        if args.out:
            from pathlib import Path
            path = Path(args.out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(registry.render_prometheus())
            print(f"metrics: {path}", file=out)
        else:
            print(registry.render_prometheus(), file=out, end="")
        return 0
    print(f"workload={args.workload} mode={args.mode} "
          f"total {result.total_seconds:.2f} s", file=out)
    if args.out:
        write_metrics(registry, args.out)
        print(f"metrics: {args.out}", file=out)
    elif fmt == "json":
        print(registry.to_json(), file=out)
    else:
        print(registry.render(), file=out)
    return 0


def _parse_kill(spec: str):
    """``WORKER@T`` → (worker, at)."""
    worker, sep, at = spec.partition("@")
    if not sep or not worker:
        raise SystemExit(f"bad --kill spec {spec!r}: expected WORKER@T")
    return worker, float(at)


def _parse_device_fault(spec: str, default_kind, allowed):
    """``WORKER[:DEV]@T[:KIND]`` → (worker, device, at, kind)."""
    from repro.flink.chaos import FaultKind
    loc, sep, rest = spec.partition("@")
    if not sep or not loc:
        raise SystemExit(f"bad fault spec {spec!r}: "
                         f"expected WORKER[:DEV]@T[:KIND]")
    worker, _, dev = loc.partition(":")
    at, _, kind_name = rest.partition(":")
    kind = FaultKind(kind_name) if kind_name else default_kind
    if kind not in allowed:
        raise SystemExit(f"bad fault spec {spec!r}: {kind.value} is not "
                         f"valid here")
    return worker, int(dev) if dev else 0, float(at), kind


def _parse_churn(spec: str):
    """``join[:NAME]@T`` / ``drain:WORKER@T`` / ``leave:WORKER@T``."""
    loc, sep, at = spec.partition("@")
    action, _, target = loc.partition(":")
    if not sep or action not in ("join", "drain", "leave") \
            or (action != "join" and not target):
        raise SystemExit(f"bad --churn spec {spec!r}: expected join[:NAME]@T"
                         ", drain:WORKER@T or leave:WORKER@T")
    return action, target or None, float(at)


def _build_schedule(args, worker_names, n_gpus):
    from repro.flink.chaos import (
        ChaosSchedule, ChurnSchedule, FaultKind, GPU_FAULT_KINDS,
        PCIE_FAULT_KINDS)
    schedule = ChaosSchedule()
    known = set(worker_names)
    churn_specs = [_parse_churn(spec) for spec in args.churn]
    # Joins introduce names mid-run; later --kill/--churn specs may target
    # them (the engine skips, with a trace, any that never materialize).
    for action, target, _ in churn_specs:
        if action == "join" and target:
            known.add(target)

    def check_worker(worker, spec):
        if worker not in known:
            raise SystemExit(f"unknown worker in {spec!r} "
                             f"(workers: worker0..worker{len(known) - 1})")

    for spec in args.kill:
        worker, at = _parse_kill(spec)
        check_worker(worker, spec)
        schedule.kill_worker(worker, at=at)
    for spec in args.gpu_fail:
        worker, dev, at, kind = _parse_device_fault(
            spec, FaultKind.GPU_ECC, GPU_FAULT_KINDS)
        check_worker(worker, spec)
        schedule.fail_gpu(worker, dev, at=at, kind=kind)
    for spec in args.pcie_fault:
        worker, dev, at, kind = _parse_device_fault(
            spec, FaultKind.PCIE_CORRUPT, PCIE_FAULT_KINDS)
        check_worker(worker, spec)
        schedule.fault_pcie(worker, dev, at=at, kind=kind)
    for (action, target, at), spec in zip(churn_specs, args.churn):
        if action == "join":
            before = {e.worker for e in schedule.events
                      if e.kind is FaultKind.WORKER_JOIN}
            schedule.join_worker(at=at, name=target)
            known |= {e.worker for e in schedule.events
                      if e.kind is FaultKind.WORKER_JOIN} - before
        elif action == "drain":
            check_worker(target, spec)
            schedule.drain_worker(target, at=at)
        else:
            check_worker(target, spec)
            schedule.leave_worker(target, at=at)
    if args.join_rate > 0 or args.leave_rate > 0:
        from repro.common.rng import DEFAULT_SEED
        seed = args.chaos_seed if args.chaos_seed is not None else \
            (args.seed if args.seed is not None else DEFAULT_SEED)
        drawn = ChurnSchedule.random(
            seed=seed, duration_s=args.duration, workers=worker_names,
            join_rate=args.join_rate, leave_rate=args.leave_rate,
            drain_fraction=args.drain_fraction,
            min_workers=args.min_workers)
        for event in drawn.events:
            schedule.add(event)
    if (args.worker_kill_rate > 0 or args.gpu_fault_rate > 0
            or args.pcie_fault_rate > 0):
        from repro.common.rng import DEFAULT_SEED
        seed = args.chaos_seed if args.chaos_seed is not None else \
            (args.seed if args.seed is not None else DEFAULT_SEED)
        drawn = ChaosSchedule.random(
            seed=seed, duration_s=args.duration, workers=worker_names,
            gpus_per_worker=n_gpus,
            worker_kill_rate=args.worker_kill_rate,
            gpu_fault_rate=args.gpu_fault_rate,
            pcie_fault_rate=args.pcie_fault_rate)
        for event in drawn.events:
            schedule.add(event)
    return schedule


def _cmd_chaos(args, out) -> int:
    from repro.core.gpumanager import GPUManagerConfig
    from repro.flink.chaos import values_equal
    from repro.flink.report import resilience_report

    gpus = tuple(g for g in args.gpus.split(",") if g)
    gpu_config = GPUManagerConfig(cpu_fallback=not args.no_cpu_fallback)

    def run_once(tracing, schedule=None):
        config = ClusterConfig(
            n_workers=args.workers, cpu=CPUSpec(), gpus_per_worker=gpus,
            flink=FlinkConfig(enable_tracing=tracing,
                              retry_backoff_base_s=args.backoff,
                              executor=args.executor,
                              enable_flight_recorder=bool(
                                  args.postmortem_dir
                                  and schedule is not None),
                              flight_recorder_dir=args.postmortem_dir))
        cluster = GFlinkCluster(config, gpu_config=gpu_config)
        engine = cluster.install_chaos(schedule) if schedule else None
        workload = _make_workload(args.workload, args)
        result = workload.run(GFlinkSession(cluster), args.mode)
        return cluster, engine, result

    schedule = _build_schedule(
        args, ClusterConfig(n_workers=args.workers).worker_names(),
        len(gpus) if args.mode == "gpu" else 0)
    if not len(schedule):
        print("empty fault schedule: pass --kill/--gpu-fail/--pcie-fault/"
              "--churn or a nonzero --*-rate", file=out)
        return 2

    _, _, baseline = run_once(tracing=False)
    cluster, engine, result = run_once(tracing=True, schedule=schedule)
    collect_cluster(cluster.obs.registry, cluster)

    print(f"workload={args.workload} mode={args.mode} "
          f"workers={args.workers} faults={len(schedule)}", file=out)
    print(resilience_report(engine, result, baseline,
                            cluster.obs.registry), file=out)
    if args.out:
        write_chrome_trace(cluster.obs.tracer, args.out)
        print(f"trace: {args.out}", file=out)
    recorder = cluster.obs.recorder
    if recorder is not None and recorder.bundles:
        print(f"post-mortems: {len(recorder.bundles)} bundle(s) in "
              f"{args.postmortem_dir}", file=out)
    if values_equal(baseline.value, result.value):
        print("result: identical to the fault-free run", file=out)
        return 0
    print("result: MISMATCH vs the fault-free run", file=out)
    return 1


def _parse_slos(specs):
    """``pNN=SECONDS`` / ``availability=FRAC`` → [(kind, q, target)]."""
    parsed = []
    for spec in specs:
        kind, sep, value = spec.partition("=")
        if not sep or not kind:
            raise SystemExit(f"bad --slo spec {spec!r}: expected "
                             f"pNN=SECONDS or availability=FRAC")
        try:
            target = float(value)
        except ValueError:
            raise SystemExit(f"bad --slo spec {spec!r}: "
                             f"{value!r} is not a number")
        if kind == "availability":
            if not 0.0 < target < 1.0:
                raise SystemExit(f"bad --slo spec {spec!r}: availability "
                                 f"target must be in (0, 1)")
            parsed.append(("availability", None, target))
        elif kind.startswith("p") and kind[1:].isdigit():
            q = float(f"0.{kind[1:]}")
            parsed.append(("latency", q, target))
        else:
            raise SystemExit(f"bad --slo spec {spec!r}: unknown kind "
                             f"{kind!r}")
    return parsed


def _render_monitor_report(summary, out) -> None:
    """Human-readable digest of a monitor summary document."""
    health = summary["health"]
    print(f"cluster health {health['cluster']:.0f}/100  "
          f"({summary['windows_closed']} windows of "
          f"{summary['window_s']:g} s, {len(summary['series'])} series)",
          file=out)
    for worker in sorted(health["workers"]):
        print(f"  {worker:<22} {health['workers'][worker]:.0f}/100",
              file=out)
    print("SLOs:", file=out)
    for slo in summary["slos"]:
        target = "tracking" if slo["target"] is None else \
            f"target {slo['target']:g}"
        print(f"  {slo['name']:<20} {slo['kind']:<13} {target:<16} "
              f"{slo['events']} events, {slo['bad']} bad, "
              f"burn {slo['burn_rate']:.2f}x, "
              f"budget left {slo['budget_remaining_frac']:.1%}", file=out)
    alerts = summary["alerts"]
    if alerts:
        print(f"alerts ({len(alerts)}):", file=out)
        for a in alerts:
            resolved = (f"resolved @ {a['resolved_at_s']:.2f} s"
                        if a["resolved_at_s"] is not None else "UNRESOLVED")
            print(f"  [{a['severity']:<8}] {a['rule']:<20} "
                  f"{a['series']}  fired @ {a['fired_at_s']:.2f} s, "
                  f"{resolved}", file=out)
    else:
        print("alerts: none fired", file=out)


def _cmd_monitor(args, out) -> int:
    import json as _json
    from pathlib import Path

    from repro.flink.report import resilience_report
    from repro.obs.dashboard import write_dashboard
    from repro.obs.monitor import validate_monitor_summary

    gpus = tuple(g for g in args.gpus.split(",") if g)
    slos = _parse_slos(args.slo)
    schedule = _build_schedule(
        args, ClusterConfig(n_workers=args.workers).worker_names(),
        len(gpus) if args.mode == "gpu" else 0)

    config = ClusterConfig(
        n_workers=args.workers, cpu=CPUSpec(), gpus_per_worker=gpus,
        flink=FlinkConfig(enable_tracing=True, enable_monitoring=True,
                          monitor_window_s=args.window,
                          retry_backoff_base_s=args.backoff,
                          executor=args.executor,
                          enable_flight_recorder=bool(args.postmortem_dir),
                          flight_recorder_dir=args.postmortem_dir))
    cluster = GFlinkCluster(config)
    mon = cluster.obs.monitor
    for kind, q, target in slos:
        if kind == "availability":
            mon.set_availability_target(target)
        else:
            mon.set_latency_target(target, percentile=q)
    engine = cluster.install_chaos(schedule) if len(schedule) else None
    workload = _make_workload(args.workload, args)
    result = workload.run(GFlinkSession(cluster), args.mode)
    collect_cluster(cluster.obs.registry, cluster)
    mon.finalize()
    summary = mon.summary()

    print(f"workload={args.workload} mode={args.mode} "
          f"workers={args.workers} total {result.total_seconds:.2f} s "
          f"faults={len(schedule)}", file=out)
    _render_monitor_report(summary, out)
    if engine is not None:
        print(resilience_report(engine, result,
                                registry=cluster.obs.registry), file=out)

    errors = validate_monitor_summary(summary)
    if errors:
        for error in errors:
            print(f"invalid monitor summary: {error}", file=out)
        return 2
    if args.summary_out:
        path = Path(args.summary_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(summary, indent=2) + "\n")
        print(f"summary: {path}", file=out)
    if args.dashboard_out:
        write_dashboard(
            summary, args.dashboard_out,
            title=f"GMonitor: {args.workload} ({args.mode})")
        print(f"dashboard: {args.dashboard_out}", file=out)
    recorder = cluster.obs.recorder
    if recorder is not None and recorder.bundles:
        print(f"post-mortems: {len(recorder.bundles)} bundle(s) in "
              f"{args.postmortem_dir}", file=out)

    failed = False
    by_rule = {}
    for a in summary["alerts"]:
        by_rule.setdefault(a["rule"], []).append(a)
    for rule in args.expect_alert:
        fired = by_rule.get(rule, [])
        if not fired:
            print(f"FAIL: expected alert {rule!r} never fired", file=out)
            failed = True
        elif not any(a["resolved_at_s"] is not None for a in fired):
            print(f"FAIL: alert {rule!r} fired but never resolved",
                  file=out)
            failed = True
    # Only explicitly requested SLO targets gate the exit code; the
    # built-in tracking objectives report burn without failing the run.
    explicit = {kind for kind, _, _ in slos}
    for slo in summary["slos"]:
        gated = ("latency" in explicit and slo["name"] == "job_latency") or \
            ("availability" in explicit and slo["name"]
             == "task_availability")
        if gated and slo["violated"]:
            print(f"FAIL: SLO {slo['name']} violated "
                  f"(burn {slo['burn_rate']:.2f}x)", file=out)
            failed = True
    unresolved = [a for a in summary["alerts"]
                  if a["severity"] == "critical"
                  and a["resolved_at_s"] is None]
    for a in unresolved:
        print(f"FAIL: critical alert {a['rule']!r} still firing at end "
              f"of run", file=out)
        failed = True
    return 1 if failed else 0


def _parse_thresholds(specs):
    """``METRIC=REL`` pairs → threshold-override dict."""
    overrides = {}
    for spec in specs:
        metric, sep, value = spec.partition("=")
        if not sep or not metric:
            raise SystemExit(f"bad --threshold spec {spec!r}: "
                             f"expected METRIC=REL")
        try:
            overrides[metric] = float(value)
        except ValueError:
            raise SystemExit(f"bad --threshold spec {spec!r}: "
                             f"{value!r} is not a number")
    return overrides


def _cmd_profile(args, out) -> int:
    import json as _json

    from repro.obs.profile import (
        compare_summaries, profile_file, render_comparison, render_text,
        validate_profile_summary)

    try:
        summary = profile_file(args.trace)
    except (OSError, ValueError, _json.JSONDecodeError) as exc:
        print(f"cannot profile {args.trace}: {exc}", file=out)
        return 2
    errors = validate_profile_summary(summary)
    if errors:
        for error in errors:
            print(f"invalid profile summary: {error}", file=out)
        return 2
    if not args.quiet:
        print(render_text(summary), file=out)
    if args.json_out:
        from pathlib import Path
        path = Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(summary, indent=2) + "\n")
        print(f"summary: {path}", file=out)
    if args.baseline is None:
        return 0
    try:
        baseline = profile_file(args.baseline)
    except (OSError, ValueError, _json.JSONDecodeError) as exc:
        print(f"cannot load baseline {args.baseline}: {exc}", file=out)
        return 2
    deltas = compare_summaries(summary, baseline,
                               _parse_thresholds(args.threshold))
    print(render_comparison(deltas), file=out)
    if args.explain or args.explain_out:
        from repro.obs.explain import (
            explain_summaries, render_explanation, validate_explanation)
        explanation = explain_summaries(summary, baseline)
        explanation["baseline"]["source"] = args.baseline
        explanation["current"]["source"] = args.trace
        exp_errors = validate_explanation(explanation)
        if exp_errors:
            for error in exp_errors:
                print(f"invalid explanation: {error}", file=out)
            return 2
        print(render_explanation(explanation), file=out)
        if args.explain_out:
            from pathlib import Path
            path = Path(args.explain_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(_json.dumps(explanation, indent=2) + "\n")
            print(f"explanation: {path}", file=out)
    return 1 if any(d.regressed for d in deltas) else 0


def _cmd_postmortem(args, out) -> int:
    from repro.obs.flightrecorder import (
        load_bundles, render_bundle, validate_postmortem_bundle)

    try:
        bundles = load_bundles(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot load post-mortem bundles from {args.path}: {exc}",
              file=out)
        return 2
    if not bundles:
        print(f"no post-mortem bundles found at {args.path}", file=out)
        return 2
    failed = False
    for i, (filename, doc) in enumerate(bundles):
        if i:
            print("", file=out)
        print(f"== {filename}", file=out)
        errors = validate_postmortem_bundle(doc)
        if errors:
            failed = True
            for error in errors:
                print(f"  INVALID: {error}", file=out)
            continue
        print(render_bundle(doc, spans=args.spans), file=out)
    return 2 if failed else 0


def _cmd_list(out) -> int:
    print("available workloads (paper Table 1):", file=out)
    for name, (cls, nominal, size_param) in sorted(WORKLOADS.items()):
        print(f"  {name:10s} {cls.__name__:32s} "
              f"default {size_param}={nominal:.3g}", file=out)
    return 0


def _cmd_specs(out) -> int:
    print(f"{'name':8s} {'SMs':>4} {'SP GFLOP/s':>11} {'mem':>7} "
          f"{'mem BW':>9} {'PCIe':>9} {'engines':>8}", file=out)
    for name, spec in sorted(SPECS.items()):
        print(f"{name:8s} {spec.sm_count:>4} {spec.sp_gflops:>11.0f} "
              f"{spec.mem_bytes / 2**30:>5.0f}GB "
              f"{spec.mem_bandwidth_bps / 1e9:>7.0f}GB/s "
              f"{spec.pcie_effective_bps / 1e9:>7.1f}GB/s "
              f"{spec.copy_engines:>8}", file=out)
    return 0


def main(argv: Optional[list] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "metrics":
        return _cmd_metrics(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "monitor":
        return _cmd_monitor(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "postmortem":
        return _cmd_postmortem(args, out)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "specs":
        return _cmd_specs(out)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
