"""Deterministic random-number utilities.

Every stochastic component of the reproduction draws from a
:func:`numpy.random.Generator` derived from a single root seed via
``spawn_key``-style derivation, so that (a) the whole simulation is
reproducible from one integer and (b) adding a new component does not perturb
the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed used by benchmarks and examples unless overridden.
DEFAULT_SEED = 20160816  # ICPP 2016 conference dates


def derive_seed(root: int, *names: str) -> int:
    """Derive a stable 63-bit child seed from ``root`` and a name path."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(root)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest(), "little") & ((1 << 63) - 1)


def generator(root: int, *names: str) -> np.random.Generator:
    """A NumPy generator seeded from ``root`` and the component name path."""
    return np.random.default_rng(derive_seed(root, *names))
