"""Discrete-event simulation kernel.

A compact process-interaction engine in the style of SimPy: model logic is
written as Python generators that ``yield`` :class:`Event` objects and are
resumed when those events fire.  The :class:`Environment` owns the virtual
clock and the event heap.

Design notes
------------
* Events fire in ``(time, priority, sequence)`` order, so same-time events are
  deterministic: FIFO within a priority band.
* A :class:`Process` is itself an event that succeeds with the generator's
  return value (or fails with its exception), so processes can wait on each
  other, and :class:`AllOf` / :class:`AnyOf` compose them.
* Failed events whose failure is never observed raise at ``run()`` time rather
  than being silently dropped — unhandled model errors must not vanish.
* The engine is single-threaded and allocation-light; benchmark jobs schedule
  hundreds of thousands of events, so the hot paths avoid closures where a
  bound method suffices.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import InterruptError, SimulationError

# Priority bands for same-time ordering.  URGENT is used by the kernel itself
# (process resumption) so that control flow continues before new model events
# scheduled at the same instant.
URGENT = 0
NORMAL = 1

#: Type of the generators that implement simulation processes.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* once given a value via
    :meth:`succeed` / :meth:`fail` (and scheduled), and *processed* once its
    callbacks have run.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._scheduled = False
        self._defused = False

    # -- state ----------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is Event._PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiters receive the exception thrown into their generator.  If nobody
        ever waits, the failure surfaces from :meth:`Environment.step`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so it will not crash ``run()``."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT, 0.0)


class Interruption(Event):
    """Internal event that throws :class:`InterruptError` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = InterruptError(cause)
        self._defused = True
        self.env._schedule(self, URGENT, 0.0)

    def _interrupt(self, event: Event) -> None:
        if self.process.triggered:
            return  # the process finished in the meantime; interrupt is moot
        # Unsubscribe from whatever the process was waiting on, then resume it
        # with the interrupt error.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self.process._resume)
            except ValueError:
                pass
        self.process._resume(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is an event: it succeeds with the generator's return value,
    or fails with the exception that escaped the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at the current time."""
        Interruption(self, cause)

    # -- the scheduler's entry point --------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active = self
        try:
            while True:
                try:
                    if event._ok:
                        next_event = self._generator.send(event._value)
                    else:
                        event._defused = True
                        next_event = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    break
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    break

                if not isinstance(next_event, Event):
                    err = SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{next_event!r}")
                    self._target = None
                    try:
                        self._generator.throw(err)
                    except (StopIteration, SimulationError):
                        pass
                    self.fail(err)
                    break

                if next_event.callbacks is not None:
                    # Not yet processed: subscribe and go to sleep.
                    next_event.callbacks.append(self._resume)
                    self._target = next_event
                    break
                # Already processed: continue immediately with its value.
                event = next_event
        finally:
            self.env._active = None


class ConditionValue:
    """Ordered mapping of event -> value produced by :class:`AllOf`/:class:`AnyOf`."""

    def __init__(self, events: list[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> list[Any]:
        """Values of the fired events, in the order they were passed in."""
        return [e.value for e in self.events]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ConditionValue {self.values()!r}>"


class Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for e in self._events:
            if e.env is not env:
                raise SimulationError("events from different environments")
        self._remaining = 0
        if self._check_trivial():
            return
        for e in self._events:
            if e.callbacks is None:
                self._on_sub_event(e)
            else:
                self._remaining += 1
                e.callbacks.append(self._on_sub_event)
        # Re-check in case all sub-events were already processed.
        if not self.triggered and self._satisfied():
            self.succeed(ConditionValue(self._fired()))

    # subclass hooks ------------------------------------------------------------
    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check_trivial(self) -> bool:
        if not self._events:
            self.succeed(ConditionValue([]))
            return True
        return False

    def _fired(self) -> list[Event]:
        # "Fired" means the event has been processed by the scheduler, not
        # merely given a value: a Timeout carries its value from construction
        # but only fires when its delay elapses.
        return [e for e in self._events if e.callbacks is None]

    def _on_sub_event(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if self._satisfied():
            self.succeed(ConditionValue(self._fired()))


class AllOf(Condition):
    """Fires once *all* sub-events have fired; fails fast on the first failure."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return all(e.callbacks is None and e._ok for e in self._events)


class AnyOf(Condition):
    """Fires once *any* sub-event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return any(e.callbacks is None and e._ok for e in self._events)


class Environment:
    """The simulation environment: virtual clock plus event heap."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None

    # -- introspection -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active

    # -- event factories ---------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event (a one-shot signal)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now with ``value``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start ``generator`` as a new process; returns the process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of dropping it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, ``until`` (a time) passes, or
        ``until`` (an event) fires.  Returns the event's value in that case.
        """
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                # Already processed before run() was called.
                if not stop._ok:
                    raise stop._value
                return stop._value
            sentinel: list[Event] = []
            stop.callbacks.append(sentinel.append)
            while self._heap:
                self.step()
                if sentinel:
                    if not stop._ok:
                        stop._defused = True
                        raise stop._value
                    return stop._value
            raise SimulationError(
                "schedule ran dry before the awaited event fired (deadlock?)")
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past "
                                 f"(now={self._now})")
            while self._heap and self._heap[0][0] <= horizon:
                self.step()
            self._now = max(self._now, horizon)
            return None
        while self._heap:
            self.step()
        return None
