"""Cluster network model.

The testbed in the paper is a commodity GbE/10GbE cluster; what matters to the
evaluation is that shuffles and remote HDFS reads cost time proportional to
bytes moved and queue behind other traffic on the same NIC.  We model each
node with one full-duplex NIC: an egress port and an ingress port, each a
unit-capacity :class:`~repro.common.resources.Resource` drained at the
configured bandwidth.  A transfer holds the sender's egress port and the
receiver's ingress port for ``bytes / bandwidth`` plus a fixed round-trip
latency.  Loopback transfers are free except for a small in-memory copy cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.resources import Resource
from repro.common.simclock import Environment, Event


@dataclass(frozen=True)
class NetworkConfig:
    """Network calibration constants.

    bandwidth_bps
        Per-NIC bandwidth in bytes/second (full duplex, per direction).
    latency_s
        Fixed per-transfer setup latency (TCP round trip, framing).
    loopback_bps
        Effective memcpy bandwidth for same-node "transfers".
    """

    bandwidth_bps: float = 1.0e9  # ~10 GbE effective
    latency_s: float = 150e-6
    loopback_bps: float = 8.0e9


class _Port:
    """One direction of a node's NIC."""

    def __init__(self, env: Environment):
        self.lock = Resource(env, capacity=1)
        self.bytes_moved = 0


class Network:
    """Point-to-point transfers among a fixed set of named nodes."""

    def __init__(self, env: Environment, node_names: list[str],
                 config: NetworkConfig | None = None):
        if len(set(node_names)) != len(node_names):
            raise ConfigError(f"duplicate node names: {node_names}")
        self.env = env
        self.config = config or NetworkConfig()
        self._egress: Dict[str, _Port] = {n: _Port(env) for n in node_names}
        self._ingress: Dict[str, _Port] = {n: _Port(env) for n in node_names}

    @property
    def nodes(self) -> list[str]:
        return list(self._egress)

    def add_node(self, name: str) -> None:
        """Register a node added after construction (e.g. elastic workers)."""
        if name in self._egress:
            raise ConfigError(f"node {name!r} already registered")
        self._egress[name] = _Port(self.env)
        self._ingress[name] = _Port(self.env)

    def transfer(self, src: str, dst: str, nbytes: int,
                 progress: Optional[
                     Tuple[Sequence[float], Callable[[float], None]]
                 ] = None) -> Generator[Event, None, None]:
        """Simulation process: move ``nbytes`` from ``src`` to ``dst``.

        Charges wire time on both endpoints' ports; a loopback transfer is
        charged at memcpy speed without touching the NIC.

        ``progress``, when given, is ``(marks, callback)``: cumulative byte
        offsets at which ``callback(cum)`` fires as the wire time elapses.
        The wire charge is sliced per mark with an identical sum, so total
        network time is unchanged; the pipelined executor uses the callback
        to publish a remote read's byte prefix as it lands.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src not in self._egress:
            raise ConfigError(f"unknown source node {src!r}")
        if dst not in self._ingress:
            raise ConfigError(f"unknown destination node {dst!r}")
        if src == dst:
            yield from self._charge(nbytes / self.config.loopback_bps,
                                    nbytes, progress)
            return
        out_port = self._egress[src]
        in_port = self._ingress[dst]
        out_req = out_port.lock.request()
        in_req = in_port.lock.request()
        yield self.env.all_of([out_req, in_req])
        try:
            yield self.env.timeout(self.config.latency_s)
            yield from self._charge(nbytes / self.config.bandwidth_bps,
                                    nbytes, progress)
            out_port.bytes_moved += nbytes
            in_port.bytes_moved += nbytes
        finally:
            out_port.lock.release(out_req)
            in_port.lock.release(in_req)

    def _charge(self, seconds: float, nbytes: int,
                progress: Optional[
                    Tuple[Sequence[float], Callable[[float], None]]]
                ) -> Generator[Event, None, None]:
        """Charge ``seconds`` of linear transfer time, optionally sliced at
        byte ``marks`` with ``callback(cum)`` fired at each."""
        if progress is None or nbytes <= 0:
            yield self.env.timeout(seconds)
            return
        marks, callback = progress
        done = 0.0
        for cum in marks:
            cum = min(float(cum), float(nbytes))
            if cum > done:
                yield self.env.timeout(seconds * (cum - done) / nbytes)
                done = cum
            callback(done)
        if done < nbytes:
            yield self.env.timeout(seconds * (nbytes - done) / nbytes)

    def bytes_sent(self, node: str) -> int:
        """Total bytes this node has put on the wire (excludes loopback)."""
        return self._egress[node].bytes_moved

    def bytes_received(self, node: str) -> int:
        """Total bytes this node has taken off the wire (excludes loopback)."""
        return self._ingress[node].bytes_moved
