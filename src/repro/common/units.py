"""Byte/time/rate unit helpers.

All simulated times are in **seconds** (floats) and all sizes in **bytes**
(ints).  These helpers exist so call sites read like the paper:
``transfer(2 * GiB)`` instead of ``transfer(2147483648)``.
"""

from __future__ import annotations

# -- sizes (decimal, as used by disk/network vendors and the paper's "GB") ---
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# -- sizes (binary, as used by memory subsystems and Table 2's byte counts) --
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

# -- times --------------------------------------------------------------------
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0
MINUTE = 60.0

# -- compute ------------------------------------------------------------------
GFLOPS = 1e9
TFLOPS = 1e12


def bytes_h(n: float) -> str:
    """Format a byte count for humans (binary units, 2 decimals)."""
    n = float(n)
    for unit, div in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def seconds_h(t: float) -> str:
    """Format a duration for humans."""
    if t >= 60.0:
        m, s = divmod(t, 60.0)
        return f"{int(m)}m{s:05.2f}s"
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    return f"{t * 1e6:.1f} us"


def rate_h(bytes_per_sec: float) -> str:
    """Format a bandwidth for humans, matching Table 2's ``MB/s`` style."""
    return f"{bytes_per_sec / MB:.3f} MB/s"
