"""Shared infrastructure for the GFlink reproduction.

This package provides the discrete-event simulation kernel
(:mod:`repro.common.simclock`), resource primitives
(:mod:`repro.common.resources`), unit helpers (:mod:`repro.common.units`),
deterministic RNG utilities (:mod:`repro.common.rng`), and the exception
hierarchy (:mod:`repro.common.errors`) used by every other subsystem.

The simulation kernel follows the classic process-interaction style: model
components are Python generators that ``yield`` events (timeouts, resource
requests, store gets/puts); the :class:`~repro.common.simclock.Environment`
advances a virtual clock from event to event.  All timing results produced by
the reproduction (benchmark tables and figures) are measured on this virtual
clock, while the *functional* results (cluster outputs) are computed for real
so tests can assert correctness.
"""

from repro.common.errors import (
    ReproError,
    SimulationError,
    InterruptError,
    ResourceError,
    ConfigError,
)
from repro.common.simclock import (
    Environment,
    Event,
    Timeout,
    Process,
    AllOf,
    AnyOf,
)
from repro.common.resources import Resource, PriorityResource, Store, FilterStore
from repro.common import units

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "Store",
    "FilterStore",
    "ReproError",
    "SimulationError",
    "InterruptError",
    "ResourceError",
    "ConfigError",
    "units",
]
