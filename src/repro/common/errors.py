"""Exception hierarchy for the GFlink reproduction.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch one base class.  Subsystem-specific errors (e.g. device
out-of-memory, job failure) derive from the intermediate classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """Invalid configuration (cluster, device, job or workload parameters)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class InterruptError(ReproError):
    """A simulation process was interrupted by another process.

    Carries the ``cause`` supplied by the interrupter so the interrupted
    process can distinguish preemption from cancellation.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class ResourceError(ReproError):
    """Misuse of a simulated resource (double release, bad capacity, ...)."""


class MemoryExhaustedError(ReproError):
    """A managed memory pool (Flink pages, GPU device memory) is exhausted."""


class JobExecutionError(ReproError):
    """A submitted job failed after exhausting its retry budget."""


class KernelError(ReproError):
    """A GPU kernel launch or execution failed (bad name, bad launch config)."""


class DeviceFaultError(ReproError):
    """A GPU device fault (ECC error, device OOM, hang timeout, PCIe fault).

    Unlike :class:`KernelError` (a deterministic programming error), a device
    fault is an environmental failure: the JobManager retries the subtask and
    the GPUManager counts the fault toward the device's blacklist threshold.
    """

    def __init__(self, kind: str, device: str):
        super().__init__(f"device fault on {device}: {kind}")
        self.kind = kind
        self.device = device


class LayoutError(ReproError):
    """A GStruct definition or buffer layout is invalid."""
