"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — ``capacity`` interchangeable servers (CPU slots, DMA
  copy engines, network links modeled as unit servers).
* :class:`PriorityResource` — like :class:`Resource` but the wait queue is
  ordered by a numeric priority (lower first), FIFO within a priority.
* :class:`Store` — an unbounded-or-bounded FIFO buffer of Python objects
  (work queues, mailboxes).
* :class:`FilterStore` — a store whose consumers take the first item matching
  a predicate (used by the locality-aware work stealing pool).

All follow the SimPy convention: ``request()`` / ``get()`` / ``put()`` return
events to ``yield`` on, and requests act as context managers that release on
exit.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.common.errors import ResourceError
from repro.common.simclock import Environment, Event


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._order += 1
        self._order = resource._order
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if not self.triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._queue: list[Request] = []
        self._order = 0

    # -- public API -----------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a granted slot (idempotent for convenience in finally blocks)."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            request.cancel()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    # -- internals --------------------------------------------------------------
    def _request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed(request)
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)

    def _grant_next(self) -> None:
        if self._queue and len(self.users) < self.capacity:
            request = self._dequeue()
            self.users.append(request)
            request.succeed(request)

    def _dequeue(self) -> Request:
        return self._queue.pop(0)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-value first."""

    def _dequeue(self) -> Request:
        best = min(self._queue, key=lambda r: (r.priority, r._order))
        self._queue.remove(best)
        return best


class StorePut(Event):
    """Pending insertion into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Pending removal from a :class:`Store`."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter = filter


class Store:
    """FIFO object buffer with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ResourceError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event fires once there is room."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Remove the oldest item; the event fires with the item as value."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def __len__(self) -> int:
        return len(self.items)

    # -- internals ----------------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move waiting putters into the buffer while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve waiting getters from the buffer.
            served = self._serve_getters()
            progress = progress or served

    def _serve_getters(self) -> bool:
        served = False
        while self._getters and self.items:
            get = self._getters.pop(0)
            get.succeed(self.items.pop(0))
            served = True
        return served


class FilterStore(Store):
    """A :class:`Store` whose getters may demand the first matching item."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove the oldest item satisfying ``filter`` (any item if None)."""
        event = StoreGet(self, filter)
        self._getters.append(event)
        self._dispatch()
        return event

    def _serve_getters(self) -> bool:
        served = False
        # Scan getters in arrival order; each takes its first matching item.
        remaining: list[StoreGet] = []
        for get in self._getters:
            index = self._find(get.filter)
            if index is None:
                remaining.append(get)
            else:
                get.succeed(self.items.pop(index))
                served = True
        self._getters = remaining
        return served

    def _find(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if predicate is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if predicate(item):
                return i
        return None
