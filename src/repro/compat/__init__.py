"""Compatibility facades for other engines' APIs.

§3.6 of the paper ("Discussion of Migration from Flink to Spark") argues the
GFlink design carries over to Spark: both are JVM master-slave MapReduce
engines, CUDAWrapper/CUDAStub are engine-agnostic, and the producer-consumer
scheme decouples the engine from the GPUs.  :mod:`repro.compat.spark`
demonstrates the claim in code: an RDD-style API (``parallelize``, ``map``,
``reduceByKey``, ``cache`` ... plus the GFlink GPU extensions) running on
the very same cluster runtime, GPUManagers included.
"""

from repro.compat.spark import RDD, SparkContext

__all__ = ["RDD", "SparkContext"]
