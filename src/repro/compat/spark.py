"""A Spark-flavoured facade over the GFlink runtime (paper §3.6).

"An important thinking of designing GFlink is to make migration from Flink
to Spark easier" — the engine-facing pieces (CUDAWrapper/CUDAStub, the
producer-consumer GWork scheme, the GStruct off-heap layout) are all
engine-agnostic.  This module proves it: the familiar RDD API, including the
GPU extensions, is a thin adapter over :class:`repro.core.gdst.GDST`.

Semantics follow PySpark conventions: transformations are lazy and return
RDDs; actions (``collect``, ``count``, ``reduce``...) return plain values;
``cache()`` marks the lineage for in-memory reuse.  Timing for the last
action is available as ``sc.last_job_metrics``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.gdst import GDST
from repro.core.runtime import GFlinkCluster, GFlinkSession
from repro.flink.dataset import OpCost


class SparkContext:
    """Driver entry point, Spark style, on a GFlink cluster."""

    def __init__(self, cluster: GFlinkCluster, app_name: str = "spark-app"):
        self.cluster = cluster
        self.app_name = app_name
        self._session = GFlinkSession(cluster, app_id=app_name)
        self.last_job_metrics = None

    # -- RDD creation ------------------------------------------------------------
    def parallelize(self, data: Any, num_slices: Optional[int] = None,
                    element_nbytes: float = 32.0,
                    scale: float = 1.0) -> "RDD":
        """Distribute a driver collection (``sc.parallelize``)."""
        ds = self._session.from_collection(
            data, element_nbytes=element_nbytes, scale=scale,
            parallelism=num_slices)
        return RDD(self, ds)

    def hdfs_file(self, path: str, element_nbytes: float,
                  scale: float = 1.0,
                  min_partitions: Optional[int] = None) -> "RDD":
        """An RDD backed by an HDFS file (``sc.textFile`` analogue)."""
        ds = self._session.read_hdfs(path, element_nbytes, scale=scale,
                                     parallelism=min_partitions)
        return RDD(self, ds)

    def register_kernel(self, spec) -> None:
        """Register a GPU kernel (the GFlink extension carries over)."""
        self._session.register_kernel(spec)

    # -- internal ----------------------------------------------------------------
    def _run(self, result):
        self.last_job_metrics = result.metrics
        return result.value


class RDD:
    """Resilient-Distributed-Dataset-flavoured view of a GDST."""

    def __init__(self, sc: SparkContext, dataset: GDST):
        self.sc = sc
        self._ds = dataset

    def _wrap(self, ds) -> "RDD":
        return RDD(self.sc, ds)

    # -- transformations (lazy) -------------------------------------------------
    def map(self, f: Callable, cost: OpCost = OpCost()) -> "RDD":
        return self._wrap(self._ds.map(f, cost=cost))

    def filter(self, f: Callable, cost: OpCost = OpCost()) -> "RDD":
        return self._wrap(self._ds.filter(f, cost=cost))

    def flat_map(self, f: Callable, cost: OpCost = OpCost()) -> "RDD":
        return self._wrap(self._ds.flat_map(f, cost=cost))

    def map_partitions(self, f: Callable, cost: OpCost = OpCost()) -> "RDD":
        return self._wrap(self._ds.map_partition(f, cost=cost))

    def reduce_by_key(self, f: Callable,
                      cost: OpCost = OpCost()) -> "RDD":
        """``reduceByKey`` over (key, value) pairs."""
        return self._wrap(
            self._ds.group_by(lambda kv: kv[0])
            .reduce(lambda a, b: (a[0], f(a[1], b[1])), cost=cost))

    def group_by_key(self) -> "RDD":
        """``groupByKey``: (key, [values])."""
        return self._wrap(
            self._ds.group_by(lambda kv: kv[0])
            .reduce_group(lambda key, members: (key,
                                                [m[1] for m in members])))

    def distinct(self) -> "RDD":
        return self._wrap(self._ds.distinct())

    def union(self, other: "RDD") -> "RDD":
        return self._wrap(self._ds.union(other._ds))

    def cartesian(self, other: "RDD") -> "RDD":
        return self._wrap(self._ds.cross(other._ds))

    def join(self, other: "RDD") -> "RDD":
        """Pair-RDD equi-join: (k, (v_left, v_right))."""
        return self._wrap(self._ds.join(
            other._ds, lambda kv: kv[0], lambda kv: kv[0],
            join_fn=lambda l, r: (l[0], (l[1], r[1]))))

    def sort_by(self, key_fn: Callable, ascending: bool = True) -> "RDD":
        return self._wrap(self._ds.sort_partition(key_fn=key_fn,
                                                  reverse=not ascending))

    def cache(self) -> "RDD":
        """Mark for in-memory reuse across jobs (``rdd.cache()``)."""
        self._ds.persist()
        return self

    persist = cache

    # -- the GFlink GPU extensions (§3.6: the framework suits Spark too) ---------
    def gpu_map_partitions(self, kernel_name: str, **kwargs) -> "RDD":
        return self._wrap(self._ds.gpu_map_partition(kernel_name, **kwargs))

    def gpu_filter(self, kernel_name: str, **kwargs) -> "RDD":
        return self._wrap(self._ds.gpu_filter(kernel_name, **kwargs))

    # -- actions (eager, return plain values) -------------------------------------
    def collect(self) -> list:
        return self.sc._run(self._ds.collect())

    def count(self) -> float:
        return self.sc._run(self._ds.count())

    def reduce(self, f: Callable) -> Any:
        values = self.sc._run(self._ds.reduce(f).collect())
        return values[0] if values else None

    def first(self) -> Any:
        values = self.sc._run(self._ds.first(1).collect())
        return values[0] if values else None

    def take(self, n: int) -> list:
        return self.sc._run(self._ds.first(n).collect())

    def save_as_hdfs_file(self, path: str) -> str:
        return self.sc._run(self._ds.write_hdfs(path))
