"""GFlink reproduction.

A from-scratch implementation of *GFlink: An In-Memory Computing
Architecture on Heterogeneous CPU-GPU Clusters for Big Data* (Chen, Li,
Ouyang, Zeng, Li — ICPP 2016 / IEEE TPDS 29(6) 2018), including every
substrate it runs on: a Flink-like in-memory dataflow engine, a simulated
HDFS, and calibrated CUDA GPU models, all over a discrete-event simulation
(real results, modeled time — see DESIGN.md).

Subpackages
-----------
``repro.common``
    Discrete-event kernel, resources, network model, deterministic RNG.
``repro.hdfs``
    Namenode/datanodes with replication, locality and failover.
``repro.flink``
    The CPU substrate: DataSet API, JobManager/TaskManagers, shuffle,
    managed memory, operator chaining, fault tolerance, reports.
``repro.gpu``
    CUDA device/stream/DMA/kernel models for the paper's testbed GPUs.
``repro.core``
    The paper's contribution: GStruct, HBuffer, the JVM↔GPU channels,
    GMemoryManager (GPU cache), GStreamManager (3-stage pipeline),
    Algorithms 5.1/5.2, GDST, the GFlink runtime, the §6.3 cost model.
``repro.workloads``
    The evaluation benchmarks (Table 1), CPU and GPU drivers.
``repro.streaming``
    The stated future work: event-level streaming with windows, GPU window
    aggregation, and checkpointed exactly-once recovery.
``repro.compat``
    §3.6's Flink→Spark migration: an RDD facade over the same runtime.

Entry points: :class:`repro.core.GFlinkCluster` /
:class:`repro.core.GFlinkSession`, or ``python -m repro`` for the CLI.
"""

__version__ = "1.0.0"
