"""The DataStream API: lazy stream pipelines over the GFlink cluster."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.common.errors import ConfigError
from repro.streaming.engine import (
    ProcessingMode,
    SourceStage,
    StreamJobResult,
    TransformStage,
    WindowStage,
    run_pipeline,
)


@dataclass(frozen=True)
class WindowSpec:
    """An event-time window assignment."""

    size_s: float
    slide_s: float
    session_gap_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.session_gap_s is not None:
            if self.session_gap_s <= 0:
                raise ConfigError("session gap must be positive")
            return
        if self.size_s <= 0 or self.slide_s <= 0:
            raise ConfigError("window size and slide must be positive")
        if self.slide_s > self.size_s:
            raise ConfigError("slide larger than size leaves gaps")

    @classmethod
    def tumbling(cls, size_s: float) -> "WindowSpec":
        """Non-overlapping fixed windows."""
        return cls(size_s=size_s, slide_s=size_s)

    @classmethod
    def sliding(cls, size_s: float, slide_s: float) -> "WindowSpec":
        """Overlapping windows: each event lands in ``size/slide`` panes."""
        return cls(size_s=size_s, slide_s=slide_s)

    @classmethod
    def session(cls, gap_s: float) -> "WindowSpec":
        """Gap-based session windows: a session closes once no event
        arrives for ``gap_s`` of event time."""
        return cls(size_s=1.0, slide_s=1.0, session_gap_s=gap_s)


class StreamEnvironment:
    """Driver entry point for streaming jobs.

    ``mode`` selects event-level (Flink) or mini-batch (Spark Streaming)
    processing; ``batch_interval_s`` is the micro-batch boundary for the
    latter.
    """

    def __init__(self, cluster, mode: ProcessingMode = ProcessingMode.EVENT_LEVEL,
                 batch_interval_s: float = 1.0,
                 buffer_capacity: Optional[int] = None):
        if batch_interval_s <= 0:
            raise ConfigError("batch_interval_s must be positive")
        if buffer_capacity is not None and buffer_capacity < 1:
            raise ConfigError("buffer_capacity must be >= 1")
        self.cluster = cluster
        self.mode = mode
        self.batch_interval_s = batch_interval_s
        # Bounded inter-stage buffers give credit-based backpressure: a slow
        # operator's full inbox blocks its producer, all the way back to the
        # source (None = unbounded, no backpressure).
        self.buffer_capacity = buffer_capacity

    def from_rate(self, rate: float, n_events: int,
                  value_fn: Optional[Callable[[int], Any]] = None,
                  element_nbytes: float = 8.0) -> "DataStream":
        """A source emitting ``n_events`` at ``rate`` events/second."""
        if rate <= 0 or n_events < 1:
            raise ConfigError("rate must be positive, n_events >= 1")
        return DataStream(self, SourceStage(
            rate=rate, n_events=n_events,
            value_fn=value_fn or (lambda i: float(i)),
            element_nbytes=element_nbytes), [])


class DataStream:
    """A (lazy) stream: source + transform chain."""

    def __init__(self, env: StreamEnvironment, source: SourceStage,
                 transforms: List[TransformStage]):
        self.env = env
        self.source = source
        self.transforms = transforms

    def _extended(self, stage: TransformStage) -> "DataStream":
        return DataStream(self.env, self.source, self.transforms + [stage])

    def map(self, udf: Callable, flops_per_element: float = 1.0,
            element_overhead_s: float = 0.5e-6) -> "DataStream":
        """Per-event transform."""
        return self._extended(TransformStage(
            "map", udf, flops_per_element, element_overhead_s))

    def filter(self, udf: Callable, flops_per_element: float = 1.0,
               element_overhead_s: float = 0.5e-6) -> "DataStream":
        """Per-event predicate."""
        return self._extended(TransformStage(
            "filter", udf, flops_per_element, element_overhead_s))

    def key_by(self, key_fn: Callable) -> "KeyedStream":
        """Partition the stream by key for windowing."""
        return KeyedStream(self, key_fn)

    def execute(self) -> StreamJobResult:
        """Run the (window-less) pipeline to completion."""
        return run_pipeline(self.env.cluster, self.source, self.transforms,
                            window=None, mode=self.env.mode,
                            batch_interval_s=self.env.batch_interval_s,
                            buffer_capacity=self.env.buffer_capacity)


class KeyedStream:
    """A stream partitioned by key."""

    def __init__(self, stream: DataStream, key_fn: Callable):
        self.stream = stream
        self.key_fn = key_fn

    def window(self, spec: WindowSpec) -> "WindowedStream":
        """Assign event-time windows."""
        return WindowedStream(self, spec)


class WindowedStream:
    """Keyed + windowed: terminal aggregation runs the job."""

    def __init__(self, keyed: KeyedStream, spec: WindowSpec):
        self.keyed = keyed
        self.spec = spec

    def aggregate(self, fn: Callable[[Any, list], Any],
                  flops_per_element: float = 2.0,
                  element_overhead_s: float = 0.5e-6,
                  parallelism: int = 2) -> StreamJobResult:
        """CPU window aggregation ``fn(key, values) -> value``."""
        return self._run(WindowStage(
            key_fn=self.keyed.key_fn, size_s=self.spec.size_s,
            slide_s=self.spec.slide_s, aggregate_fn=fn, kernel_name=None,
            flops_per_element=flops_per_element,
            element_overhead_s=element_overhead_s,
            parallelism=parallelism,
            session_gap_s=self.spec.session_gap_s))

    def gpu_aggregate(self, kernel_name: str,
                      parallelism: int = 2) -> StreamJobResult:
        """GFlink-style window aggregation: each closed window becomes a
        GWork batch on the worker's GPUs."""
        return self._run(WindowStage(
            key_fn=self.keyed.key_fn, size_s=self.spec.size_s,
            slide_s=self.spec.slide_s, aggregate_fn=None,
            kernel_name=kernel_name, flops_per_element=0.0,
            element_overhead_s=0.0, parallelism=parallelism))

    def _run(self, window: WindowStage) -> StreamJobResult:
        stream = self.keyed.stream
        return run_pipeline(stream.env.cluster, stream.source,
                            stream.transforms, window=window,
                            mode=stream.env.mode,
                            batch_interval_s=stream.env.batch_interval_s,
                            buffer_capacity=stream.env.buffer_capacity)
