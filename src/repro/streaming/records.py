"""Stream records: the unit of event-level processing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class StreamRecord:
    """One event.

    event_time
        When the event happened (simulated seconds): drives windowing.
    value
        The payload.
    emitted_at
        When the source produced it (for end-to-end latency accounting).
    """

    event_time: float
    value: Any
    emitted_at: float = 0.0

    def with_value(self, value: Any) -> "StreamRecord":
        """Same event, new payload (map semantics keep the timestamps)."""
        return StreamRecord(event_time=self.event_time, value=value,
                            emitted_at=self.emitted_at)
