"""Asynchronous barrier snapshots with exactly-once recovery.

The paper's reliability argument rests on Flink's checkpointing: "Flink has
a robust job management system as it uses replication and error detection to
schedule around failures [9]" — [9] being Carbone et al., *Lightweight
Asynchronous Snapshots for Distributed Dataflows* (the ABS algorithm).  This
module implements ABS for the streaming engine's canonical shape
(source → keyed windows → sink):

* the source injects numbered **barriers** into the stream at a fixed
  interval, recording its input position;
* each window operator, on receiving a barrier, snapshots its state (open
  panes + watermark) and forwards the barrier;
* the **transactional sink** holds results in a pending epoch and commits
  the epoch only when the barrier has arrived on every channel — so on
  failure, uncommitted results are discarded;
* recovery restores the latest *completed* checkpoint: the source rewinds
  to the recorded position, the window operators reload their snapshots,
  and replay recomputes exactly the discarded results.

Event times are derived from the stream position (``(i+1)/rate``), not the
wall clock, so replays reproduce identical windows — the determinism
exactly-once requires.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, InterruptError
from repro.common.resources import Store
from repro.common.simclock import Environment
from repro.flink.shuffle import hash_bucket
from repro.streaming.engine import WindowStage
from repro.streaming.records import StreamRecord


@dataclass(frozen=True)
class Barrier:
    """A checkpoint barrier flowing with the records."""

    checkpoint_id: int
    source_position: int


@dataclass
class WindowSnapshot:
    """One window operator's state at a barrier."""

    panes: Dict[Tuple[Any, float], List[StreamRecord]]
    watermark: float


@dataclass
class Checkpoint:
    """A completed checkpoint: everything needed to restore the job."""

    checkpoint_id: int
    source_position: int
    window_states: Dict[int, WindowSnapshot] = field(default_factory=dict)

    def complete(self, n_partitions: int) -> bool:
        return len(self.window_states) == n_partitions


EOS = object()


class CheckpointedStreamJob:
    """source → keyed tumbling/sliding windows → transactional sink,
    checkpointed with barrier snapshots."""

    def __init__(self, cluster, rate: float, n_events: int,
                 value_fn, window: WindowStage,
                 checkpoint_interval_s: float = 0.25):
        if checkpoint_interval_s <= 0:
            raise ConfigError("checkpoint_interval_s must be positive")
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.rate = rate
        self.n_events = n_events
        self.value_fn = value_fn
        self.window = window
        self.interval = checkpoint_interval_s
        # Durable state surviving failures.
        self.committed: List[Tuple[float, Any, Any]] = []
        self.checkpoints: Dict[int, Checkpoint] = {}
        self.last_completed: Optional[Checkpoint] = None
        self.attempts = 0
        self.recovered_from: Optional[int] = None

    # -- public API ----------------------------------------------------------
    def run(self, fail_at_s: Optional[float] = None
            ) -> List[Tuple[float, Any, Any]]:
        """Run to completion, optionally crashing once at ``fail_at_s``.

        Returns the committed (exactly-once) results, sorted.
        """
        finished = self._attempt(fail_at=fail_at_s)
        if not finished:
            # Crash: restore the latest completed checkpoint and replay.
            restore = self.last_completed
            self.recovered_from = (restore.checkpoint_id
                                   if restore is not None else None)
            finished = self._attempt(fail_at=None, restore=restore)
            if not finished:  # pragma: no cover - single-failure model
                raise ConfigError("second attempt must finish")
        return sorted(self.committed)

    # -- one attempt -------------------------------------------------------------
    def _attempt(self, fail_at: Optional[float],
                 restore: Optional[Checkpoint] = None) -> bool:
        self.attempts += 1
        env = self.env
        start_pos = restore.source_position if restore else 0
        partitions = self.window.parallelism

        inboxes = [Store(env) for _ in range(partitions)]
        to_sink = Store(env)
        pending: Dict[int, List] = {}          # epoch -> results
        partition_epoch = [0] * partitions
        epoch_barriers: Dict[int, int] = {}    # epoch -> arrivals at sink

        def source():
            next_cp = (restore.checkpoint_id + 1) if restore else 1
            for i in range(start_pos, self.n_events):
                event_time = (i + 1) / self.rate
                # Inject a barrier when stream time crosses the interval.
                while event_time > next_cp * self.interval:
                    barrier = Barrier(next_cp, i)
                    self.checkpoints[next_cp] = Checkpoint(next_cp, i)
                    for inbox in inboxes:
                        yield inbox.put(barrier)
                    next_cp += 1
                yield env.timeout(1.0 / self.rate)
                record = StreamRecord(event_time=event_time,
                                      value=self.value_fn(i),
                                      emitted_at=env.now)
                bucket = hash_bucket(self.window.key_fn(record.value),
                                     partitions)
                yield inboxes[bucket].put(record)
            for inbox in inboxes:
                yield inbox.put(EOS)

        def window_op(p: int):
            window = self.window
            if restore is not None and p in restore.window_states:
                snap = restore.window_states[p]
                panes = copy.deepcopy(snap.panes)
                watermark = snap.watermark
            else:
                panes = {}
                watermark = float("-inf")

            def assign(ts):
                from repro.streaming.engine import assign_windows
                return assign_windows(ts, window.size_s, window.slide_s)

            def close_ready():
                ready = sorted(
                    [key_start for key_start in panes
                     if key_start[1] + window.size_s <= watermark],
                    key=lambda ks: (ks[1], str(ks[0])))
                for key, start in ready:
                    records = panes.pop((key, start))
                    values = [r.value for r in records]
                    per = (window.element_overhead_s
                           + window.flops_per_element
                           / self.cluster.config.cpu.flops_per_core)
                    yield env.timeout(len(values) * per)
                    yield to_sink.put(
                        ("result", p,
                         (start + window.size_s, key,
                          window.aggregate_fn(key, values))))

            while True:
                item = yield inboxes[p].get()
                if item is EOS:
                    watermark = float("inf")
                    yield from close_ready()
                    yield to_sink.put(("eos", p, None))
                    return
                if isinstance(item, Barrier):
                    # ABS: snapshot state, ack, forward the barrier.
                    self.checkpoints[item.checkpoint_id].window_states[p] = \
                        WindowSnapshot(copy.deepcopy(panes), watermark)
                    yield to_sink.put(("barrier", p, item))
                    continue
                key = window.key_fn(item.value)
                for start in assign(item.event_time):
                    panes.setdefault((key, start), []).append(item)
                watermark = max(watermark, item.event_time)
                yield from close_ready()

        def sink():
            live = partitions
            while live > 0:
                kind, p, payload = yield to_sink.get()
                if kind == "eos":
                    live -= 1
                    continue
                if kind == "barrier":
                    cid = payload.checkpoint_id
                    partition_epoch[p] = cid
                    epoch_barriers[cid] = epoch_barriers.get(cid, 0) + 1
                    if epoch_barriers[cid] == partitions:
                        self._commit_epoch(cid, pending)
                    continue
                epoch = partition_epoch[p]
                pending.setdefault(epoch, []).append(payload)
            # End of stream: every barrier epoch completed; commit the tail.
            for epoch in sorted(pending):
                self.committed.extend(pending[epoch])
            pending.clear()

        procs = [env.process(source(), name="cp-source"),
                 env.process(sink(), name="cp-sink")]
        procs += [env.process(window_op(p), name=f"cp-window-{p}")
                  for p in range(partitions)]

        if fail_at is not None:
            def failer():
                yield env.timeout(fail_at)
                for proc in procs:
                    if proc.is_alive:
                        proc.interrupt("injected crash")

            env.process(failer(), name="cp-failer")

        done = env.all_of(procs)
        try:
            env.run(until=done)
        except InterruptError:
            return False
        return True

    def _commit_epoch(self, cid: int, pending: Dict[int, List]) -> None:
        """Barrier seen on every channel: the epoch's results are durable."""
        checkpoint = self.checkpoints.get(cid)
        if checkpoint is not None and checkpoint.complete(
                self.window.parallelism):
            self.last_completed = checkpoint
        for epoch in [e for e in pending if e < cid]:
            self.committed.extend(pending.pop(epoch))
