"""Streaming on GFlink — the paper's stated future work.

§1.1: "Apache Flink looks at batch processing as the special case of stream
processing ... provides event level processing which is also known as real
time streaming.  Nevertheless, Spark utilizes mini batches which doesn't
provide event level granularity.  Hence, an important reason why we have
chosen Flink to base the whole framework lies in the needs of future
expansion for a better streaming processing implementation."

This package builds that expansion:

* :mod:`repro.streaming.records` — timestamped stream records;
* :mod:`repro.streaming.api` — the DataStream API: rate-driven sources,
  ``map``/``filter``, ``key_by`` + tumbling/sliding windows, window
  aggregation on the CPU or (GFlink-style) on the GPUs via registered
  kernels;
* :mod:`repro.streaming.engine` — the execution engine, supporting both
  **event-level** processing (Flink semantics: each record flows through the
  pipeline as it arrives) and **mini-batch** processing (Spark-Streaming
  semantics: records buffered and processed at batch boundaries), so the
  paper's latency argument is measurable
  (``benchmarks/bench_streaming_latency.py``).
"""

from repro.streaming.records import StreamRecord
from repro.streaming.api import DataStream, StreamEnvironment, WindowSpec
from repro.streaming.engine import ProcessingMode, StreamJobResult

__all__ = [
    "StreamRecord",
    "DataStream",
    "StreamEnvironment",
    "WindowSpec",
    "ProcessingMode",
    "StreamJobResult",
]
