"""The streaming execution engine.

A streaming job is a linear pipeline of stages connected by stores:

    source -> [batcher] -> transform* -> [window x P] -> sink

Each stage is a simulation process on a worker; records crossing workers pay
network time; per-record compute follows the same iterator cost model as the
batch engine.  Two processing modes (§1.1):

* ``EVENT_LEVEL`` — Flink semantics: every record flows the moment it
  arrives;
* ``MINI_BATCH`` — Spark-Streaming semantics: a batcher stage holds records
  until the next batch boundary, then releases the whole micro-batch.

Window stages use event-time tumbling/sliding windows with a
monotone-source watermark; closed windows aggregate on the CPU or — GFlink
style — as a GWork batch on the worker's GPUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.resources import Store
from repro.common.simclock import Environment, Event
from repro.core.gwork import GWork
from repro.core.hbuffer import HBuffer
from repro.streaming.records import StreamRecord

#: End-of-stream sentinel flowing through the stores.
EOS = object()


def assign_windows(ts: float, size_s: float, slide_s: float) -> List[float]:
    """All window starts whose ``[start, start + size)`` contains ``ts``.

    Index-based arithmetic (start = k * slide) avoids the error accumulation
    of repeated subtraction, and the epsilon treats a timestamp within float
    noise of a boundary as belonging to the *later* window — a deterministic
    tie-break shared by every window operator.
    """
    eps = 1e-9 * max(slide_s, 1.0)
    index = math.floor((ts + eps) / slide_s)
    starts: List[float] = []
    while index * slide_s + size_s > ts + eps:
        start = index * slide_s
        if ts + eps >= start:
            starts.append(start)
        index -= 1
    return starts


class ProcessingMode(Enum):
    """§1.1's two streaming philosophies."""

    EVENT_LEVEL = "event-level"   # Flink: real-time, per-record
    MINI_BATCH = "mini-batch"     # Spark Streaming: batched


@dataclass
class StreamJobResult:
    """Outcome of one streaming job."""

    results: List[Tuple[float, Any, Any]]   # (window_end, key, aggregate)
    record_latencies: List[float]           # per record reaching the sink
    window_latencies: List[float]           # per closed window
    makespan: float
    events_processed: int

    @property
    def mean_record_latency(self) -> float:
        if not self.record_latencies:
            return 0.0
        return float(np.mean(self.record_latencies))

    @property
    def p99_record_latency(self) -> float:
        if not self.record_latencies:
            return 0.0
        return float(np.percentile(self.record_latencies, 99))

    @property
    def throughput(self) -> float:
        """Events per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.events_processed / self.makespan


# ---------------------------------------------------------------------------
# Stage descriptions (built by the API, executed below)
# ---------------------------------------------------------------------------

@dataclass
class SourceStage:
    rate: float                  # events per simulated second
    n_events: int
    value_fn: Callable[[int], Any]
    element_nbytes: float


@dataclass
class TransformStage:
    kind: str                    # "map" | "filter"
    udf: Callable
    flops_per_element: float
    element_overhead_s: float


@dataclass
class WindowStage:
    key_fn: Callable
    size_s: float
    slide_s: float
    aggregate_fn: Optional[Callable]         # (key, [values]) -> value
    kernel_name: Optional[str]               # GPU alternative
    flops_per_element: float
    element_overhead_s: float
    parallelism: int
    allowed_lateness_s: float = 0.0
    #: When set, windows are per-key *sessions*: a session absorbs events
    #: closer than the gap and closes once the watermark passes its last
    #: event plus the gap.  size_s/slide_s are ignored.
    session_gap_s: Optional[float] = None


def run_pipeline(cluster, source: SourceStage,
                 transforms: List[TransformStage],
                 window: Optional[WindowStage],
                 mode: ProcessingMode,
                 batch_interval_s: float,
                 buffer_capacity: Optional[int] = None) -> StreamJobResult:
    """Execute one streaming job to completion; returns its result.

    ``buffer_capacity`` bounds every inter-stage store: when a downstream
    operator falls behind, its full inbox blocks the producer and the stall
    propagates to the source — credit-based backpressure.
    """
    env: Environment = cluster.env
    worker_names = cluster.config.worker_names()
    start = env.now

    results: List[Tuple[float, Any, Any]] = []
    record_latencies: List[float] = []
    window_latencies: List[float] = []
    counters = {"events": 0}

    # -- wire up the stages -------------------------------------------------------
    stage_workers: List[str] = []
    stores: List[Store] = []

    def next_store() -> Store:
        capacity = buffer_capacity or float("inf")
        store = Store(env, capacity=capacity)
        stores.append(store)
        return store

    source_out = next_store()
    procs = [env.process(
        _source_proc(env, source, source_out, counters),
        name="stream-source")]
    stage_workers.append(worker_names[0])
    upstream = source_out

    if mode is ProcessingMode.MINI_BATCH:
        batched = next_store()
        procs.append(env.process(
            _batcher_proc(env, upstream, batched, batch_interval_s),
            name="stream-batcher"))
        upstream = batched

    for i, transform in enumerate(transforms):
        out = next_store()
        worker = worker_names[(i + 1) % len(worker_names)]
        hop = _hop_cost(cluster, stage_workers[-1], worker,
                        source.element_nbytes)
        procs.append(env.process(
            _transform_proc(env, transform, upstream, out, cluster.config,
                            hop),
            name=f"stream-{transform.kind}-{i}"))
        stage_workers.append(worker)
        upstream = out

    sink_in = upstream
    if window is not None:
        window_out = next_store()
        # Keyed fan-out to P window operators.
        inboxes = [next_store() for _ in range(window.parallelism)]
        procs.append(env.process(
            _router_proc(env, upstream, inboxes, window.key_fn),
            name="stream-router"))
        for p, inbox in enumerate(inboxes):
            worker = cluster.workers[
                worker_names[p % len(worker_names)]]
            hop = _hop_cost(cluster, stage_workers[-1], worker.name,
                            source.element_nbytes)
            procs.append(env.process(
                _window_proc(env, window, inbox, window_out, worker,
                             cluster.config, hop, window_latencies),
                name=f"stream-window-{p}"))
        procs.append(env.process(
            _window_collector(env, window_out, window.parallelism, results),
            name="stream-window-sink"))
        sink_in = None

    if sink_in is not None:
        procs.append(env.process(
            _record_sink(env, sink_in, results, record_latencies),
            name="stream-sink"))

    env.run(until=env.all_of(procs))
    return StreamJobResult(
        results=results,
        record_latencies=record_latencies,
        window_latencies=window_latencies,
        makespan=env.now - start,
        events_processed=counters["events"],
    )


def _hop_cost(cluster, src_worker: str, dst_worker: str,
              nbytes: float) -> Callable[[], Generator[Event, None, None]]:
    """Per-record network hop between chained stages (free when local)."""
    def hop():
        if src_worker != dst_worker:
            yield from cluster.network.transfer(src_worker, dst_worker,
                                                int(max(nbytes, 1)))
        return
        yield  # pragma: no cover - generator marker

    return hop


# -- stage processes -------------------------------------------------------------

def _source_proc(env, source: SourceStage, out: Store, counters):
    interval = 1.0 / source.rate
    for i in range(source.n_events):
        yield env.timeout(interval)
        record = StreamRecord(event_time=env.now,
                              value=source.value_fn(i),
                              emitted_at=env.now)
        counters["events"] += 1
        yield out.put(record)
    yield out.put(EOS)


def _batcher_proc(env, upstream: Store, out: Store, interval: float):
    """Spark-Streaming semantics: records are assigned to the micro-batch of
    their *arrival* interval and released at its boundary."""
    buffer: List[StreamRecord] = []
    pending = None  # an outstanding get carried across boundaries
    eos = False
    while True:
        # The next batch boundary, strictly in the future (the +1e-9 guard
        # prevents a float-rounding livelock when now sits on a boundary).
        boundary = (math.floor(env.now / interval + 1e-9) + 1) * interval
        while not eos:
            remaining = boundary - env.now
            if remaining <= 1e-9:
                break
            if pending is None:
                pending = upstream.get()
            timer = env.timeout(remaining)
            yield env.any_of([pending, timer])
            if pending.processed:
                item = pending.value
                pending = None
                if item is EOS:
                    eos = True
                else:
                    buffer.append(item)
        for record in buffer:
            yield out.put(record)
        buffer.clear()
        if eos:
            yield out.put(EOS)
            return


def _transform_proc(env, transform: TransformStage, upstream: Store,
                    out: Store, config, hop):
    per_event = (transform.element_overhead_s
                 + transform.flops_per_element / config.cpu.flops_per_core)
    while True:
        item = yield upstream.get()
        if item is EOS:
            yield out.put(EOS)
            return
        yield from hop()
        yield env.timeout(per_event)
        if transform.kind == "map":
            yield out.put(item.with_value(transform.udf(item.value)))
        elif transform.kind == "filter":
            if transform.udf(item.value):
                yield out.put(item)
        else:  # pragma: no cover - validated at build time
            raise ConfigError(transform.kind)


def _router_proc(env, upstream: Store, inboxes: List[Store], key_fn):
    from repro.flink.shuffle import hash_bucket
    while True:
        item = yield upstream.get()
        if item is EOS:
            for inbox in inboxes:
                yield inbox.put(EOS)
            return
        bucket = hash_bucket(key_fn(item.value), len(inboxes))
        yield inboxes[bucket].put(item)


def _window_proc(env, window: WindowStage, inbox: Store, out: Store,
                 worker, config, hop, window_latencies: List[float]):
    """Event-time windowing with a monotone watermark."""
    if window.session_gap_s is not None:
        yield from _session_window_proc(env, window, inbox, out, worker,
                                        config, hop, window_latencies)
        return
    panes: Dict[Tuple[Any, float], List[StreamRecord]] = {}
    watermark = float("-inf")

    def assign(ts: float) -> List[float]:
        return assign_windows(ts, window.size_s, window.slide_s)

    def close_ready():
        ready = [(key, start) for (key, start) in panes
                 if start + window.size_s + window.allowed_lateness_s
                 <= watermark]
        for key, start in sorted(ready, key=lambda p: (p[1], str(p[0]))):
            records = panes.pop((key, start))
            yield from aggregate(key, start, records)

    def aggregate(key, start, records):
        values = [r.value for r in records]
        n = len(values)
        if window.kernel_name is not None:
            gm = worker.gpumanager
            if gm is None:
                raise ConfigError(
                    f"worker {worker.name} has no GPUManager for the GPU "
                    f"window aggregate")
            hbuf = HBuffer(np.asarray(values, dtype=np.float64),
                           element_nbytes=8.0, pinned=True)
            work = GWork(execute_name=window.kernel_name,
                         in_buffers={"in": hbuf},
                         out_buffer=HBuffer([], 8.0, pinned=True),
                         size=n, params={"key": key},
                         app_id="streaming")
            out_hbuf = yield gm.submit(work)
            value = _scalar(out_hbuf.elements)
        else:
            per_event = (window.element_overhead_s
                         + window.flops_per_element
                         / config.cpu.flops_per_core)
            yield env.timeout(n * per_event)
            value = window.aggregate_fn(key, values)
        end = start + window.size_s
        # A window forced shut by end-of-stream closes before its event-time
        # end; latency is only meaningful once the window is semantically
        # complete.
        window_latencies.append(max(env.now - end, 0.0))
        yield out.put((end, key, value))

    while True:
        item = yield inbox.get()
        if item is EOS:
            watermark = float("inf")
            yield from close_ready()
            yield out.put(EOS)
            return
        yield from hop()
        key = window.key_fn(item.value)
        for start in assign(item.event_time):
            panes.setdefault((key, start), []).append(item)
        watermark = max(watermark, item.event_time)
        yield from close_ready()


def _session_window_proc(env, window: WindowStage, inbox: Store, out: Store,
                         worker, config, hop,
                         window_latencies: List[float]):
    """Gap-based session windows (one open session per key: the source's
    event times are monotone, so a new event either extends the session or
    proves the old one closed)."""
    gap = window.session_gap_s
    open_sessions: Dict[Any, Tuple[float, float, List[StreamRecord]]] = {}
    watermark = float("-inf")

    def aggregate(key, start, end, records):
        values = [r.value for r in records]
        per = (window.element_overhead_s
               + window.flops_per_element / config.cpu.flops_per_core)
        yield env.timeout(len(values) * per)
        value = window.aggregate_fn(key, values)
        window_latencies.append(max(env.now - (end + gap), 0.0))
        yield out.put((end, key, value))

    def close_expired():
        expired = [key for key, (start, end, _) in open_sessions.items()
                   if end + gap <= watermark]
        for key in sorted(expired, key=str):
            start, end, records = open_sessions.pop(key)
            yield from aggregate(key, start, end, records)

    while True:
        item = yield inbox.get()
        if item is EOS:
            watermark = float("inf")
            yield from close_expired()
            yield out.put(EOS)
            return
        yield from hop()
        key = window.key_fn(item.value)
        ts = item.event_time
        if key in open_sessions:
            start, end, records = open_sessions[key]
            if ts <= end + gap:
                records.append(item)
                open_sessions[key] = (start, max(end, ts), records)
            else:
                # The gap elapsed: the old session is complete.
                del open_sessions[key]
                yield from aggregate(key, start, end, records)
                open_sessions[key] = (ts, ts, [item])
        else:
            open_sessions[key] = (ts, ts, [item])
        watermark = max(watermark, ts)
        yield from close_expired()


def _window_collector(env, window_out: Store, n_producers: int,
                      results: List):
    remaining = n_producers
    while remaining > 0:
        item = yield window_out.get()
        if item is EOS:
            remaining -= 1
            continue
        results.append(item)


def _record_sink(env, upstream: Store, results: List,
                 record_latencies: List[float]):
    while True:
        item = yield upstream.get()
        if item is EOS:
            return
        record_latencies.append(env.now - item.emitted_at)
        results.append((item.event_time, None, item.value))


def _scalar(elements) -> Any:
    if isinstance(elements, np.ndarray):
        return float(elements.reshape(-1)[0])
    if isinstance(elements, (list, tuple)) and elements:
        return elements[0]
    return elements
