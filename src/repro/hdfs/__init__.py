"""Simulated Hadoop Distributed File System.

The paper's workloads read their input from HDFS in the first iteration and
write results back in the last one; those I/O phases dominate the first/last
iteration timings in Fig. 7 and cap WordCount's speedup in Fig. 5c.  This
package provides the minimum HDFS semantics those experiments depend on:

* a :class:`~repro.hdfs.namenode.NameNode` holding file→block metadata and a
  round-robin-with-replication placement policy;
* :class:`~repro.hdfs.datanode.DataNode` s with bandwidth-limited disks;
* a :class:`~repro.hdfs.filesystem.HDFS` facade with locality-aware reads
  (local replica preferred; remote reads pay network time).

Payloads are real Python/NumPy objects; the *nominal* byte size used for
timing is tracked separately so scaled-down data can stand in for the paper's
multi-gigabyte inputs (see DESIGN.md §2).
"""

from repro.hdfs.blocks import Block, BlockLocation
from repro.hdfs.namenode import NameNode, FileStatus
from repro.hdfs.datanode import DataNode, DiskConfig
from repro.hdfs.filesystem import HDFS

__all__ = [
    "Block",
    "BlockLocation",
    "NameNode",
    "FileStatus",
    "DataNode",
    "DiskConfig",
    "HDFS",
]
