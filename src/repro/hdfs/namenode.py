"""Namenode: file namespace and block placement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigError
from repro.hdfs.blocks import Block


@dataclass
class FileStatus:
    """Namespace entry for one file."""

    path: str
    blocks: List[Block]

    @property
    def nbytes(self) -> int:
        """Nominal file size — sum of nominal block sizes."""
        return sum(b.nbytes for b in self.blocks)

    @property
    def block_count(self) -> int:
        return len(self.blocks)


class NameNode:
    """Tracks the file namespace and chooses replica placements.

    Placement policy mirrors HDFS defaults closely enough for locality
    experiments: the first replica goes to the writer's node when known
    (write affinity), the remainder round-robin across the other datanodes.
    """

    def __init__(self, datanode_names: List[str], replication: int = 2):
        if not datanode_names:
            raise ConfigError("at least one datanode is required")
        if replication < 1:
            raise ConfigError(f"replication must be >= 1, got {replication}")
        self.datanode_names = list(datanode_names)
        #: What the deployment asked for; the effective ``replication`` is
        #: re-clamped to the live datanode count as nodes join and leave.
        self.requested_replication = replication
        self.replication = min(replication, len(datanode_names))
        self._files: Dict[str, FileStatus] = {}
        self._next_block_id = 0
        self._rr = 0  # round-robin cursor for placement

    # -- elastic membership -----------------------------------------------------
    def add_datanode(self, name: str) -> None:
        """Make ``name`` a placement candidate for new blocks.

        Existing blocks are untouched; the effective replication factor may
        grow back toward the requested one.
        """
        if name in self.datanode_names:
            raise ConfigError(f"datanode {name!r} already registered")
        self.datanode_names.append(name)
        self.replication = min(self.requested_replication,
                               len(self.datanode_names))

    def remove_datanode(self, name: str) -> None:
        """Stop placing new blocks on ``name`` (decommission step one).

        Existing replica lists are the filesystem's job to re-home (see
        :meth:`repro.hdfs.filesystem.HDFS.decommission`).
        """
        if name in self.datanode_names:
            self.datanode_names.remove(name)
        if self.datanode_names:
            self.replication = min(self.requested_replication,
                                   len(self.datanode_names))

    # -- namespace ----------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """True if ``path`` is in the namespace."""
        return path in self._files

    def get_file(self, path: str) -> FileStatus:
        """Namespace entry for ``path``; raises if missing."""
        if path not in self._files:
            raise ConfigError(f"no such HDFS file: {path!r}")
        return self._files[path]

    def list_files(self) -> List[str]:
        """All paths currently in the namespace."""
        return sorted(self._files)

    def delete(self, path: str) -> FileStatus:
        """Remove ``path`` from the namespace, returning its old entry."""
        if path not in self._files:
            raise ConfigError(f"no such HDFS file: {path!r}")
        return self._files.pop(path)

    # -- block allocation ------------------------------------------------------------
    def create_file(self, path: str) -> FileStatus:
        """Open a new file for writing; fails if it already exists."""
        if path in self._files:
            raise ConfigError(f"HDFS file already exists: {path!r}")
        status = FileStatus(path=path, blocks=[])
        self._files[path] = status
        return status

    def allocate_block(self, path: str, nbytes: int, payload: object,
                       writer_node: str | None = None) -> Block:
        """Allocate the next block of ``path`` and choose its replica set."""
        status = self.get_file(path)
        block = Block(
            block_id=self._next_block_id,
            path=path,
            index=len(status.blocks),
            nbytes=nbytes,
            payload=payload,
            replicas=self._place(writer_node),
        )
        self._next_block_id += 1
        status.blocks.append(block)
        return block

    def _place(self, writer_node: str | None) -> List[str]:
        replicas: List[str] = []
        if writer_node is not None and writer_node in self.datanode_names:
            replicas.append(writer_node)
        while len(replicas) < self.replication:
            candidate = self.datanode_names[self._rr % len(self.datanode_names)]
            self._rr += 1
            if candidate not in replicas:
                replicas.append(candidate)
        return replicas
