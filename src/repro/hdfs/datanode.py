"""Datanode: a node-local disk with bandwidth-limited reads and writes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.resources import Resource
from repro.common.simclock import Environment, Event
from repro.hdfs.blocks import Block


@dataclass(frozen=True)
class DiskConfig:
    """Disk calibration (commodity SATA, per DESIGN.md §5)."""

    read_bps: float = 150e6
    write_bps: float = 120e6
    seek_s: float = 4e-3  # average positioning time charged per block access
    spindles: int = 1     # concurrent block streams the disk can serve


class DataNode:
    """Holds block replicas for one cluster node and meters disk time."""

    def __init__(self, env: Environment, name: str,
                 disk: DiskConfig | None = None):
        self.env = env
        self.name = name
        self.disk = disk or DiskConfig()
        if self.disk.spindles < 1:
            raise ConfigError("spindles must be >= 1")
        self._io = Resource(env, capacity=self.disk.spindles)
        self._blocks: Dict[int, Block] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        #: Failure injection: a dead datanode serves no reads or writes;
        #: readers fail over to another replica.
        self.alive = True

    def fail(self) -> None:
        """Simulate a datanode crash (replicas become unreachable)."""
        self.alive = False

    def recover(self) -> None:
        """Bring the datanode back (its replicas are intact)."""
        self.alive = True

    # -- metadata --------------------------------------------------------------
    def has_block(self, block_id: int) -> bool:
        """True if this node stores a replica of ``block_id``."""
        return block_id in self._blocks

    def block_count(self) -> int:
        """Number of replicas stored on this node."""
        return len(self._blocks)

    # -- simulated I/O -----------------------------------------------------------
    def write_block(self, block: Block) -> Generator[Event, None, None]:
        """Simulation process: persist one replica of ``block`` here."""
        with self._io.request() as req:
            yield req
            yield self.env.timeout(
                self.disk.seek_s + block.nbytes / self.disk.write_bps)
            self._blocks[block.block_id] = block
            self.bytes_written += block.nbytes

    def read_block(self, block_id: int,
                   progress: Optional[
                       Tuple[Sequence[float], Callable[[float], None]]
                   ] = None) -> Generator[Event, None, Block]:
        """Simulation process: read a replica; returns the :class:`Block`.

        ``progress``, when given, is ``(marks, callback)``: ``marks`` are
        cumulative byte offsets within the block and ``callback(cum)`` is
        invoked as the read crosses each one.  The linear transfer portion
        is charged in per-mark slices whose sum equals the single-shot
        charge, so total disk time is identical with or without it — the
        callback only exposes *when* a byte prefix is resident (the
        pipelined executor's streaming source publishes on it).
        """
        if not self.alive:
            raise ConfigError(f"datanode {self.name!r} is down")
        if block_id not in self._blocks:
            raise ConfigError(
                f"datanode {self.name!r} holds no replica of block {block_id}")
        block = self._blocks[block_id]
        with self._io.request() as req:
            yield req
            if progress is None:
                yield self.env.timeout(
                    self.disk.seek_s + block.nbytes / self.disk.read_bps)
            else:
                marks, callback = progress
                yield self.env.timeout(self.disk.seek_s)
                done = 0.0
                for cum in marks:
                    cum = min(float(cum), float(block.nbytes))
                    if cum > done:
                        yield self.env.timeout(
                            (cum - done) / self.disk.read_bps)
                        done = cum
                    callback(done)
                if done < block.nbytes:
                    yield self.env.timeout(
                        (block.nbytes - done) / self.disk.read_bps)
            self.bytes_read += block.nbytes
        return block

    def drop_block(self, block_id: int) -> None:
        """Remove a replica (simulated disk failure / decommission)."""
        self._blocks.pop(block_id, None)
