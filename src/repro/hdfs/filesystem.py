"""HDFS facade: locality-aware reads, replicated writes."""

from __future__ import annotations

from typing import Generator, Iterable, List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.network import Network
from repro.common.simclock import Environment, Event
from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode, DiskConfig
from repro.hdfs.namenode import NameNode, FileStatus
from repro.obs.trace import NULL_SPAN


class HDFS:
    """The distributed filesystem as seen by the dataflow runtime.

    Chunks are ``(payload, nominal_bytes)`` pairs; each chunk becomes one
    block.  Writes persist every replica (pipelined in parallel, like the
    HDFS write pipeline); reads prefer a node-local replica and otherwise
    stream the block from the nearest (first) replica over the network.
    """

    def __init__(self, env: Environment, node_names: Sequence[str],
                 network: Network, replication: int = 2,
                 disk: DiskConfig | None = None, obs=None):
        self.env = env
        self.network = network
        self.namenode = NameNode(list(node_names), replication=replication)
        self.disk = disk  # shared spec; elastic datanodes reuse it
        self.datanodes = {name: DataNode(env, name, disk=disk)
                          for name in node_names}
        # Optional repro.obs.Observability: block reads/writes become spans
        # on the acting node's "hdfs" lane plus registry byte counters.
        self.obs = obs

    # -- elastic membership -------------------------------------------------------
    def add_datanode(self, name: str) -> DataNode:
        """Bring up a datanode on a newly joined worker (metadata-speed)."""
        if name in self.datanodes:
            raise ConfigError(f"datanode {name!r} already exists")
        self.namenode.add_datanode(name)
        node = DataNode(self.env, name, disk=self.disk)
        self.datanodes[name] = node
        return node

    def _span(self, name: str, node: str, **args):
        """A trace span on ``node``'s hdfs lane (no-op without tracing)."""
        if self.obs is None or not self.obs.enabled:
            return NULL_SPAN
        tracer = self.obs.tracer
        return tracer.span(name, "hdfs", tracer.track(node, "hdfs"), **args)

    # -- metadata ---------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """True if ``path`` exists."""
        return self.namenode.exists(path)

    def status(self, path: str) -> FileStatus:
        """File status (blocks, sizes) for ``path``."""
        return self.namenode.get_file(path)

    def locate(self, path: str) -> List[Block]:
        """The block list of ``path`` (metadata only, no time charged)."""
        return list(self.namenode.get_file(path).blocks)

    def delete(self, path: str) -> None:
        """Remove ``path`` and drop all replicas (metadata-speed operation)."""
        status = self.namenode.delete(path)
        for block in status.blocks:
            for node in block.replicas:
                self.datanodes[node].drop_block(block.block_id)

    # -- simulated I/O --------------------------------------------------------------
    def write(self, path: str, chunks: Iterable[Tuple[object, int]],
              writer_node: str | None = None) -> Generator[Event, None, FileStatus]:
        """Simulation process: create ``path`` from ``chunks``.

        Each chunk is written to all its replicas; replica writes for one
        block proceed in parallel (the HDFS pipeline overlaps them), block
        writes are sequential as a single writer streams the file.
        """
        status = self.namenode.create_file(path)
        for payload, nbytes in chunks:
            if nbytes < 0:
                raise ConfigError(f"negative block size: {nbytes}")
            block = self.namenode.allocate_block(
                path, nbytes, payload, writer_node=writer_node)
            writes = []
            for i, node in enumerate(block.replicas):
                writes.append(self.env.process(
                    self._write_replica(block, node, writer_node, first=i == 0),
                    name=f"hdfs-write-{path}-{block.index}-{node}"))
            yield self.env.all_of(writes)
        return status

    def append_block(self, path: str, payload: object, nbytes: int,
                     writer_node: str | None = None
                     ) -> Generator[Event, None, Block]:
        """Simulation process: append one block to an existing file.

        Used by parallel sinks: the file is created once (metadata), then
        each sink subtask appends its partition as a block from its worker.
        """
        if nbytes < 0:
            raise ConfigError(f"negative block size: {nbytes}")
        block = self.namenode.allocate_block(
            path, nbytes, payload, writer_node=writer_node)
        writes = [
            self.env.process(
                self._write_replica(block, node, writer_node, first=i == 0),
                name=f"hdfs-append-{path}-{block.index}-{node}")
            for i, node in enumerate(block.replicas)
        ]
        yield self.env.all_of(writes)
        return block

    def _write_replica(self, block: Block, node: str,
                       writer_node: str | None,
                       first: bool) -> Generator[Event, None, None]:
        with self._span("hdfs.write", node, nbytes=block.nbytes,
                        block=block.index, replica=not first):
            # Writer → replica network hop (free if the replica is the writer).
            if writer_node is not None and writer_node != node:
                yield from self.network.transfer(writer_node, node,
                                                 block.nbytes)
            yield from self.datanodes[node].write_block(block)
        if self.obs is not None and first:
            self.obs.registry.counter("hdfs.blocks.written").inc()

    def read_block(self, block: Block, at_node: str,
                   progress=None) -> Generator[Event, None, object]:
        """Simulation process: read one block's payload from ``at_node``.

        Charges local disk time if a live replica is local; otherwise disk
        time on the first live remote replica plus a network transfer to
        ``at_node``.  Dead datanodes are skipped (replica failover); when no
        live replica remains the read fails.

        ``progress`` is an optional ``(marks, callback)`` pair (cumulative
        byte offsets within the block); ``callback(cum)`` fires as each
        prefix becomes resident *at* ``at_node`` — during the disk read for
        a local replica, during the network leg for a remote one.  Charges
        are sliced, never added: total time is identical either way.
        """
        live = [node for node in block.replicas
                if self.datanodes[node].alive]
        if not live:
            raise ConfigError(
                f"no live replica of block {block.block_id} "
                f"(replicas: {block.replicas})")
        local = at_node in live
        with self._span("hdfs.read", at_node, nbytes=block.nbytes,
                        block=block.index, local=local):
            if local:
                stored = yield from self.datanodes[at_node].read_block(
                    block.block_id, progress)
            else:
                source = live[0]
                stored = yield from self.datanodes[source].read_block(
                    block.block_id)
                yield from self.network.transfer(source, at_node,
                                                 block.nbytes, progress)
        if self.obs is not None:
            self.obs.registry.counter(
                "hdfs.reads", locality="local" if local else "remote").inc()
        return stored.payload

    def read_file(self, path: str,
                  at_node: str) -> Generator[Event, None, List[object]]:
        """Simulation process: read all blocks of ``path`` sequentially."""
        payloads = []
        for block in self.locate(path):
            payload = yield from self.read_block(block, at_node)
            payloads.append(payload)
        return payloads

    def repair(self, failed_node: str) -> Generator[Event, None, int]:
        """Simulation process: re-replicate blocks that lost a replica on
        ``failed_node`` (the namenode's under-replication repair).

        Each affected block is copied from a surviving replica to a live
        node not already holding it, paying disk read + network + disk
        write.  Returns the number of blocks repaired.
        """
        repaired = 0
        for path in self.namenode.list_files():
            for block in self.namenode.get_file(path).blocks:
                if failed_node not in block.replicas:
                    continue
                live = [n for n in block.replicas
                        if n != failed_node and self.datanodes[n].alive]
                if not live:
                    continue  # unrecoverable: no surviving replica
                candidates = [n for n in self.datanodes
                              if self.datanodes[n].alive
                              and n not in block.replicas]
                if not candidates:
                    continue
                source, target = live[0], candidates[0]
                yield from self.datanodes[source].read_block(block.block_id)
                yield from self.network.transfer(source, target,
                                                 block.nbytes)
                yield from self.datanodes[target].write_block(block)
                block.replicas.remove(failed_node)
                block.replicas.append(target)
                repaired += 1
        return repaired

    def decommission(self, node: str) -> Generator[Event, None, int]:
        """Simulation process: gracefully retire ``node``'s datanode.

        The mirror image of :meth:`repair`: the node is removed from new-
        block placement first, then every replica it holds is *copied off*
        — read from the (still live) retiring node, shipped to a live node
        not already holding the block, written there — before the node
        goes away.  Unlike a failure nothing is ever under-replicated.
        Blocks with no eligible target simply shrink by one replica (their
        surviving copies still serve reads).  Returns blocks moved.
        """
        self.namenode.remove_datanode(node)
        moved = 0
        retiring = self.datanodes.get(node)
        for path in self.namenode.list_files():
            for block in self.namenode.get_file(path).blocks:
                if node not in block.replicas:
                    continue
                live_others = [n for n in block.replicas
                               if n != node and self.datanodes[n].alive]
                candidates = [n for n in self.datanodes
                              if n != node and self.datanodes[n].alive
                              and n not in block.replicas]
                if not candidates:
                    if live_others:
                        block.replicas.remove(node)
                    continue
                target = candidates[0]
                if retiring is not None and retiring.alive:
                    source = node
                elif live_others:
                    source = live_others[0]
                else:
                    continue  # lost mid-drain with no surviving copy
                with self._span("hdfs.decommission", target,
                                nbytes=block.nbytes, block=block.index):
                    yield from self.datanodes[source].read_block(
                        block.block_id)
                    yield from self.network.transfer(source, target,
                                                     block.nbytes)
                    yield from self.datanodes[target].write_block(block)
                block.replicas.remove(node)
                block.replicas.append(target)
                moved += 1
        return moved

    # -- observability ----------------------------------------------------------
    def total_bytes_read(self) -> int:
        """Disk bytes read across all datanodes."""
        return sum(dn.bytes_read for dn in self.datanodes.values())

    def total_bytes_written(self) -> int:
        """Disk bytes written across all datanodes."""
        return sum(dn.bytes_written for dn in self.datanodes.values())
