"""HDFS block metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class BlockLocation:
    """One replica of a block on a specific datanode."""

    node: str
    block_id: int


@dataclass
class Block:
    """A unit of HDFS storage.

    Attributes
    ----------
    block_id
        Globally unique id assigned by the namenode.
    path
        The file this block belongs to.
    index
        Position of the block within the file.
    nbytes
        Nominal size in bytes — what the timing model charges for.  May be
        much larger than the in-memory footprint of ``payload`` when running
        scaled-down data (see DESIGN.md §2).
    payload
        The actual data (list / NumPy array / str ...), stored on every
        replica identically.
    replicas
        Names of the datanodes holding a replica.
    """

    block_id: int
    path: str
    index: int
    nbytes: int
    payload: Any
    replicas: list[str] = field(default_factory=list)

    def locations(self) -> list[BlockLocation]:
        """Replica locations for this block."""
        return [BlockLocation(node=n, block_id=self.block_id)
                for n in self.replicas]

    def is_local_to(self, node: str) -> bool:
        """True if ``node`` holds a replica of this block."""
        return node in self.replicas
