"""The reliability tour — §1.1: "Reliability thus acts as the main driver
for constructing our system, GFlink, on top of Flink."

Four failure stories, end to end:

1. a Flink task crashes twice and is re-executed (task-retry);
2. a GPU kernel suffers transient device faults and the GWork is retried
   through the same path;
3. an HDFS datanode dies and reads fail over to surviving replicas;
4. a streaming job crashes mid-flight and recovers from its last barrier
   snapshot with exactly-once results (the paper's ref [9]).

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FailureInjector
from repro.gpu import KernelSpec
from repro.streaming.checkpoint import CheckpointedStreamJob
from repro.streaming.engine import WindowStage


def cluster_config():
    return ClusterConfig(n_workers=3, cpu=CPUSpec(cores=2),
                         gpus_per_worker=("c2050",))


def story_1_task_retry():
    injector = FailureInjector(plan={("flaky-map", 0): 2})
    session = GFlinkSession(GFlinkCluster(cluster_config()),
                            failure_injector=injector)
    result = session.from_collection(list(range(100)), parallelism=4) \
        .map(lambda x: x * 2, name="flaky-map").collect()
    assert sorted(result.value) == [2 * x for x in range(100)]
    print(f"1. task retry       : subtask failed "
          f"{injector.failures_injected}x, job still exact "
          f"({result.metrics.retries} retries, "
          f"{result.seconds:.2f} s)")


def story_2_gpu_fault():
    state = {"calls": 0}

    def flaky_kernel(bufs, params):
        state["calls"] += 1
        if state["calls"] <= 2:
            raise RuntimeError("simulated ECC error")
        return {"out": bufs["in"] * 2.0}

    session = GFlinkSession(GFlinkCluster(cluster_config()))
    session.register_kernel(KernelSpec(
        "flaky", flaky_kernel, flops_per_element=1.0, efficiency=0.5))
    data = np.arange(64, dtype=np.float64)
    result = session.from_collection(data, element_nbytes=8,
                                     parallelism=1) \
        .gpu_map_partition("flaky").collect()
    assert np.allclose(sorted(result.value), sorted(data * 2))
    print(f"2. GPU fault retry  : kernel crashed twice, GWork resubmitted, "
          f"results exact ({result.metrics.retries} retries)")


def story_3_hdfs_failover():
    cluster = GFlinkCluster(cluster_config())
    cluster.load_hdfs_file("/data", [(list(range(50)), 400),
                                     (list(range(50, 100)), 400)])
    victim = cluster.hdfs.locate("/data")[0].replicas[0]
    cluster.hdfs.datanodes[victim].fail()
    session = GFlinkSession(cluster)
    result = session.read_hdfs("/data", element_nbytes=8).collect()
    assert sorted(result.value) == list(range(100))
    print(f"3. HDFS failover    : datanode {victim} dead, reads served "
          f"from surviving replicas")


def story_4_streaming_exactly_once():
    window = WindowStage(
        key_fn=lambda v: int(v) % 3, size_s=0.2, slide_s=0.2,
        aggregate_fn=lambda key, values: (key, sum(values)),
        kernel_name=None, flops_per_element=1.0,
        element_overhead_s=0.2e-6, parallelism=2)

    clean = CheckpointedStreamJob(
        GFlinkCluster(cluster_config()), rate=400.0, n_events=400,
        value_fn=float, window=window, checkpoint_interval_s=0.2).run()

    crashed = CheckpointedStreamJob(
        GFlinkCluster(cluster_config()), rate=400.0, n_events=400,
        value_fn=float, window=window, checkpoint_interval_s=0.2)
    recovered = crashed.run(fail_at_s=0.55)
    assert recovered == clean
    print(f"4. exactly-once     : crash at t=0.55 s, restored from "
          f"checkpoint #{crashed.recovered_from}, committed results "
          f"identical to the clean run ({len(recovered)} windows)")


def main():
    print("GFlink reliability tour (the paper's §1.1 driver):")
    story_1_task_retry()
    story_2_gpu_fault()
    story_3_hdfs_failover()
    story_4_streaming_exactly_once()


if __name__ == "__main__":
    main()
