"""Iterative SpMV and the GPU cache — the paper's §6.6.1 / Fig. 8a story.

A 1 GB matrix (ELLPACK GStruct rows) is multiplied against an evolving
vector for ten iterations on a single machine.  With the GPU cache on, the
matrix is uploaded once and iterations 2..9 collapse; with it off, every
iteration re-pays the PCIe transfer.

Run:  python examples/spmv_iterative.py
"""

from repro.common.units import GB
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import SpMVWorkload


def run(gpu_cache: bool):
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=4),
                           gpus_per_worker=("c2050", "c2050"))
    cluster = GFlinkCluster(config)
    workload = SpMVWorkload(nominal_elements=(1 * GB) / 192.0,
                            real_elements=10_000, iterations=10,
                            gpu_cache=gpu_cache)
    result = workload.run(GFlinkSession(cluster), "gpu")
    pcie = [m.pcie_bytes for m in result.job_metrics
            if m.job_name.startswith("spmv-gpu-iter")]
    return result, pcie


def main():
    cached, cached_pcie = run(gpu_cache=True)
    uncached, uncached_pcie = run(gpu_cache=False)

    print("SpMV, 1 GB matrix, single machine with 2x C2050")
    print(f"{'iter':>4}  {'cache on':>9}  {'cache off':>9}   "
          f"{'PCIe on':>9}  {'PCIe off':>9}")
    for i in range(len(cached.iteration_seconds)):
        print(f"{i + 1:>4}  {cached.iteration_seconds[i]:>7.2f} s  "
              f"{uncached.iteration_seconds[i]:>7.2f} s   "
              f"{cached_pcie[i] / 1e6:>6.0f} MB  "
              f"{uncached_pcie[i] / 1e6:>6.0f} MB")
    print(f"total: {cached.total_seconds:.2f} s vs "
          f"{uncached.total_seconds:.2f} s without the cache "
          f"({uncached.total_seconds / cached.total_seconds:.2f}x)")
    print("after iteration 1 the cached run moves only the vector and the "
          "result over PCIe; the matrix stays resident (paper §4.2.2).")


if __name__ == "__main__":
    main()
