"""Profile a traced run: critical path, bottlenecks, regression gate.

Runs KMeans on a tracing-enabled cluster, then asks GProfiler the paper's
evaluation questions (§6): where does the makespan go (critical-path
attribution across kernel / PCIe / CPU / scheduling / shuffle / HDFS),
which operator is the bottleneck and why, how busy the GPU engines were
and how much of the copy time hid under compute.  Finally it demonstrates
the regression gate by comparing the run against a doctored "faster
baseline".

Run:  python examples/profile_run.py
"""

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.report import profile_summary
from repro.obs.profile import (
    compare_summaries,
    render_comparison,
    render_text,
)
from repro.workloads import KMeansWorkload


def main():
    config = ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=2),
        gpus_per_worker=("c2050", "c2050"),
        flink=FlinkConfig(enable_tracing=True))
    cluster = GFlinkCluster(config)
    workload = KMeansWorkload(nominal_elements=210e6, real_elements=6000,
                              iterations=2)
    workload.run(GFlinkSession(cluster), "gpu")

    # The full machine-readable summary; render_text is the same report
    # `python -m repro profile <trace.json>` prints for an offline trace.
    summary = profile_summary(cluster)
    print(render_text(summary))

    # The acceptance property: the critical path *partitions* the job
    # window, so the per-category attribution sums to the makespan.
    cats = summary["critical_path"]["categories"]
    assert abs(sum(cats.values()) - summary["makespan_s"]) < 1e-9

    # Regression gate: against a baseline 25% faster than this run, the
    # makespan check (default threshold 10%) must flag a regression.
    baseline = dict(summary, makespan_s=summary["makespan_s"] / 1.25)
    deltas = compare_summaries(summary, baseline)
    print()
    print(render_comparison(deltas))
    assert any(d.metric == "makespan_s" and d.regressed for d in deltas)
    print("\n(the makespan REGRESSION above is the gate working: the "
          "doctored baseline is 25% faster than this run)")


if __name__ == "__main__":
    main()
