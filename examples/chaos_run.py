"""Chaos engineering on the simulated cluster: failure domains end to end.

One iterative GPU workload runs twice: once fault-free, once under a
deterministic :class:`~repro.flink.chaos.ChaosSchedule` that

* kills an uncorrectable ECC error on worker0's only GPU (the device is
  blacklisted and worker0's GPU operators degrade to CPU execution of the
  same kernels), and
* kills worker2 mid-job (its slots, partitions and datanode vanish; the
  heartbeat monitor declares it dead, displaced subtasks re-place with
  exponential back-off, and lineage recovery recomputes only the lost
  partitions).

The run ends with a resilience report and the acceptance check that makes
chaos runs trustworthy: the faulted run's results are *identical* to the
fault-free run's.

Run:  python examples/chaos_run.py
"""

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.chaos import ChaosSchedule, values_equal
from repro.flink.report import resilience_report
from repro.workloads import PointAddWorkload


def build_cluster(tracing=False):
    return GFlinkCluster(ClusterConfig(
        n_workers=3, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",),
        flink=FlinkConfig(enable_tracing=tracing,
                          retry_backoff_base_s=0.05)))


def make_workload():
    return PointAddWorkload(nominal_elements=6000, real_elements=6000,
                            iterations=3)


def main():
    print("GFlink chaos run: worker kill + GPU blacklist, identical results")

    baseline = make_workload().run(GFlinkSession(build_cluster()), "gpu")
    # The simulated clock is deterministic, so the baseline tells us exactly
    # when the job is in flight — aim the worker kill at its midpoint.
    job_start = baseline.job_metrics[0].started_at
    midpoint = job_start + baseline.total_seconds / 2

    cluster = build_cluster(tracing=True)
    schedule = (ChaosSchedule()
                .fail_gpu("worker0", device=0, at=job_start)  # ECC: gone
                .kill_worker("worker2", at=midpoint))
    engine = cluster.install_chaos(schedule)
    result = make_workload().run(GFlinkSession(cluster), "gpu")

    print(resilience_report(engine, result, baseline, cluster.obs.registry))
    assert values_equal(baseline.value, result.value)
    assert sum(m.fallback_tasks for m in result.job_metrics) > 0
    print("results identical to the fault-free run "
          "(lineage recovery + CPU fallback, no approximation)")


if __name__ == "__main__":
    main()
