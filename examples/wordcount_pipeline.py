"""WordCount: a classic batch pipeline, and why its GPU speedup is ~1.1x.

Builds the full DataSet pipeline by hand — read from HDFS, tokenize,
count, shuffle, write back — on both engines, then breaks down where the
time goes (paper §6.5: "the I/O overhead of WordCount is the bottleneck").

Run:  python examples/wordcount_pipeline.py
"""

from repro.common.units import GB
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import WordCountWorkload


def main():
    config = ClusterConfig(n_workers=10, cpu=CPUSpec(cores=4),
                           gpus_per_worker=("c2050", "c2050"))

    results = {}
    for mode in ("cpu", "gpu"):
        cluster = GFlinkCluster(config)
        workload = WordCountWorkload(
            nominal_elements=(24 * GB) / 10.0,  # 24 GB of ~10-byte words
            real_elements=50_000)
        results[mode] = workload.run(GFlinkSession(cluster), mode)

    print("WordCount, 24 GB corpus, 10 workers")
    for mode in ("cpu", "gpu"):
        result = results[mode]
        metrics = result.job_metrics[0]
        disk_s = (metrics.hdfs_read_bytes + metrics.hdfs_write_bytes) \
            / (10 * 150e6)
        engine = "Flink (CPU) " if mode == "cpu" else "GFlink (GPU)"
        print(f"  {engine}: {result.total_seconds:6.2f} s total "
              f"(~{disk_s:5.2f} s aggregate disk, "
              f"{metrics.shuffle_bytes / 1e6:6.1f} MB shuffled, "
              f"GPU kernels {metrics.gpu_kernel_s:5.2f} s)")
    speedup = results["cpu"].total_seconds / results["gpu"].total_seconds
    print(f"  speedup: {speedup:.2f}x — the paper reports ~1.1x: a one-pass "
          f"batch job is I/O-bound,\n  so accelerating the counting barely "
          f"moves the total.")


if __name__ == "__main__":
    main()
