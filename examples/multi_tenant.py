"""Multi-tenant GPU sharing — the paper's §6.6.4 concurrency experiment.

Three applications (KMeans, SpMV, PointAdd) are submitted simultaneously to
one heterogeneous cluster.  Their Flink tasks produce GWork; the shared
GPUs' GStreams consume it (producer-consumer decoupling, §5), with each
application owning its own GPU cache regions.

Run:  python examples/multi_tenant.py
"""

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import (
    KMeansWorkload,
    PointAddWorkload,
    SpMVWorkload,
    run_concurrent,
)


def make_apps():
    return [
        (KMeansWorkload(nominal_elements=40e6, real_elements=6_000,
                        iterations=4), "gpu"),
        (SpMVWorkload(nominal_elements=4e6, real_elements=6_000,
                      iterations=4), "gpu"),
        (PointAddWorkload(nominal_elements=40e6, real_elements=6_000,
                          iterations=4), "gpu"),
    ]


def main():
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=4),
                           gpus_per_worker=("c2050", "c2050"))

    # Exclusive: each app alone on a fresh cluster.
    exclusive = {}
    for workload, mode in make_apps():
        cluster = GFlinkCluster(config)
        result = workload.run(GFlinkSession(cluster), mode)
        exclusive[workload.name] = result.total_seconds

    # Concurrent: all three share one cluster's slots, GPUs, disks.
    cluster = GFlinkCluster(config)
    concurrent = {r.name: r.total_seconds
                  for r in run_concurrent(cluster, make_apps())}

    print("Three applications on one node (4 cores + 2x C2050)")
    print(f"{'app':10s} {'exclusive':>10} {'concurrent':>11} {'slowdown':>9}")
    for name, e in exclusive.items():
        c = concurrent[name]
        print(f"{name:10s} {e:>9.2f}s {c:>10.2f}s {c / e:>8.2f}x")
    makespan = max(concurrent.values())
    print(f"joint makespan {makespan:.2f} s vs {sum(exclusive.values()):.2f} "
          f"s if run back to back —")
    print("the GPUs are time-shared safely: every app still computes its "
          "exact result\n(per-application cache regions, §4.2.2).")


if __name__ == "__main__":
    main()
