"""Quickstart: your first GFlink program.

Walks through the paper's §3.5 programming steps:

1. define a GStruct (a C-style struct whose off-heap bytes match the CUDA
   struct layout);
2. provide a CUDA kernel (here: a NumPy-semantics kernel with a roofline
   cost model — see ``repro.gpu.kernel``);
3. run a GPU map over a GDST and compare against the CPU-only Flink path.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    Float32,
    GFlinkCluster,
    GFlinkSession,
    GStruct8,
    StructField,
)
from repro.flink import ClusterConfig, CPUSpec, OpCost
from repro.gpu import KernelSpec


# Step 1 — a GStruct (paper §3.5.1): explicit field order + alignment.
class Point(GStruct8):
    x = StructField(order=0, ftype=Float32)
    y = StructField(order=1, ftype=Float32)


def saxpy_kernel(inputs, params):
    """Step 2 — the "CUDA kernel": block-at-a-time NumPy semantics."""
    pts = inputs["in"]
    out = np.empty_like(pts)
    out["x"] = params["a"] * pts["x"] + pts["y"]
    out["y"] = pts["y"]
    return {"out": out}


def main():
    # A small heterogeneous cluster: 2 workers, 4 CPU cores and two Tesla
    # C2050s each (the paper's testbed GPUs).
    config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=4),
                           gpus_per_worker=("c2050", "c2050"))
    cluster = GFlinkCluster(config)
    session = GFlinkSession(cluster)

    session.register_kernel(KernelSpec(
        name="saxpy", fn=saxpy_kernel,
        flops_per_element=2.0, bytes_per_element=Point.itemsize(),
        efficiency=0.5))

    # Some data: 50k real points standing in for 100M nominal ones
    # (dual-scale execution: results are real, timings are cluster-scale).
    n = 50_000
    points = Point.empty(n)
    points["x"] = np.linspace(0, 1, n, dtype=np.float32)
    points["y"] = np.ones(n, dtype=np.float32)
    scale = 100e6 / n

    dst = session.from_collection(points, element_nbytes=Point.itemsize(),
                                  scale=scale, parallelism=8).persist()
    dst.materialize()  # pay the load once, like an iterative job would

    # Step 3 — the same logical map on both engines.
    gpu = dst.gpu_map_partition("saxpy", params={"a": 3.0},
                                name="saxpy-gpu").collect()
    cpu = dst.map_partition(
        lambda pts: saxpy_kernel({"in": pts}, {"a": 3.0})["out"],
        cost=OpCost(flops_per_element=2.0, element_overhead_s=0.5e-6),
        name="saxpy-cpu").collect()

    gpu_x = np.sort(np.array([p["x"] for p in gpu.value]))
    cpu_x = np.sort(np.array([p["x"] for p in cpu.value]))
    assert np.allclose(gpu_x, cpu_x), "engines disagree!"

    print("GFlink quickstart — saxpy over 100M (nominal) points")
    print(f"  struct layout: {Point.layout().offsets} "
          f"itemsize={Point.itemsize()}B (matches the CUDA struct)")
    print(f"  CPU (Flink)  : {cpu.seconds:6.2f} simulated seconds")
    print(f"  GPU (GFlink) : {gpu.seconds:6.2f} simulated seconds")
    print(f"  speedup      : {cpu.seconds / gpu.seconds:.2f}x")
    print(f"  PCIe traffic : {gpu.metrics.pcie_bytes / 1e6:.0f} MB, "
          f"GPU kernel time {gpu.metrics.gpu_kernel_s * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
