"""Migrating a GFlink program to Spark — §3.6 of the paper, demonstrated.

"An important thinking of designing GFlink is to make migration from Flink
to Spark easier ... Our proposed programming framework is also suitable for
Spark."  The CUDAWrapper/CUDAStub stack, the GStruct off-heap layout, and
the producer-consumer GWork scheme are all engine-agnostic, so the same
GPU kernels and the same cluster serve an RDD-style driver unchanged.

Run:  python examples/spark_migration.py
"""

import numpy as np

from repro.compat import SparkContext
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec


def make_cluster():
    return GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=4),
        gpus_per_worker=("c2050", "c2050")))


SAXPY = KernelSpec(
    "saxpy", lambda bufs, p: {"out": p["a"] * bufs["in"] + p["b"]},
    flops_per_element=2.0, bytes_per_element=16.0, efficiency=0.5)


def flink_style(cluster, data):
    """The GFlink (DataSet) driver."""
    session = GFlinkSession(cluster)
    session.register_kernel(SAXPY)
    ds = session.from_collection(data, element_nbytes=8.0,
                                 scale=1e3).persist()
    ds.materialize()
    result = ds.gpu_map_partition("saxpy", params={"a": 3.0, "b": 1.0}) \
        .collect()
    return sorted(result.value), result.seconds


def spark_style(cluster, data):
    """The same application through the RDD facade — same GPUs underneath."""
    sc = SparkContext(cluster, app_name="migrated-app")
    sc.register_kernel(SAXPY)
    rdd = sc.parallelize(data, element_nbytes=8.0, scale=1e3).cache()
    rdd.count()  # materialize, as the Flink driver did
    values = rdd.gpu_map_partitions("saxpy",
                                    params={"a": 3.0, "b": 1.0}).collect()
    return sorted(values), sc.last_job_metrics.makespan


def main():
    data = np.arange(20_000, dtype=np.float64)
    flink_values, flink_s = flink_style(make_cluster(), data)
    spark_values, spark_s = spark_style(make_cluster(), data)

    assert np.allclose(flink_values, spark_values)
    print("saxpy over 20M (nominal) points, two drivers, one GPU stack:")
    print(f"  GFlink DataSet driver : {flink_s:6.2f} simulated s")
    print(f"  RDD (Spark) driver    : {spark_s:6.2f} simulated s")
    print("  identical results, identical kernels, identical GPUManagers —")
    print("  the §3.6 migration story: only the driver API changed.")


if __name__ == "__main__":
    main()
