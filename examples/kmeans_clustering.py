"""KMeans on GFlink vs Flink — the paper's flagship iterative workload.

Reproduces the Fig. 5a / Fig. 7a story at example scale: the GPU path wins
~5x overall; per-iteration times show the slow first iteration (HDFS read +
GPU upload), flat fast middle iterations (points cached on the GPUs), and a
slower last iteration (writing assignments back to HDFS).

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import KMeansWorkload


def main():
    config = ClusterConfig(n_workers=10, cpu=CPUSpec(cores=4),
                           gpus_per_worker=("c2050", "c2050"))

    results = {}
    for mode in ("cpu", "gpu"):
        cluster = GFlinkCluster(config)  # fresh cluster per engine
        workload = KMeansWorkload(nominal_elements=210e6,
                                  real_elements=20_000, iterations=8)
        results[mode] = workload.run(GFlinkSession(cluster), mode)

    print("KMeans, 210M points, k=16, 10 workers x (4 cores + 2x C2050)")
    print(f"{'iter':>4}  {'Flink (CPU)':>12}  {'GFlink (GPU)':>12}")
    for i, (c, g) in enumerate(zip(results["cpu"].iteration_seconds,
                                   results["gpu"].iteration_seconds)):
        note = "  <- reads HDFS" if i == 0 else (
            "  <- writes HDFS" if i == 7 else "")
        print(f"{i + 1:>4}  {c:>10.2f} s  {g:>10.2f} s{note}")
    cpu_t = results["cpu"].total_seconds
    gpu_t = results["gpu"].total_seconds
    print(f"total {cpu_t:>9.2f} s  {gpu_t:>10.2f} s   "
          f"speedup {cpu_t / gpu_t:.2f}x (paper: ~5x)")

    # Both engines find the same centers.
    cpu_centers = np.sort(np.asarray(results["cpu"].value, float), axis=0)
    gpu_centers = np.sort(np.asarray(results["gpu"].value, float), axis=0)
    assert np.allclose(cpu_centers, gpu_centers, atol=1e-3)
    print("centers agree between engines (max diff "
          f"{np.abs(cpu_centers - gpu_centers).max():.2e})")


if __name__ == "__main__":
    main()
