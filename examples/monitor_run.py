"""Online monitoring with GMonitor: SLOs, alerts, health, dashboard.

A WordCount GPU run executes under the online telemetry plane
(:mod:`repro.obs.monitor`) while a chaos schedule kills a worker mid-job:

* registry metrics are sampled into fixed windows of simulated time,
* the chaos heartbeat misses feed the ``worker_unhealthy`` alert, which
  fires when the worker dies and resolves once the master declares the
  death and the cluster moves on,
* stranded subtasks retry elsewhere, burning the ``task_availability``
  SLO's error budget (watch the burn rate),
* worker/device/cluster health scores track the incident window,
* and the whole run renders into a self-contained HTML dashboard
  (no external dependencies — open it in any browser).

The monitor never schedules simulation events, so the simulated clock is
bit-identical whether monitoring is on or off.

Run:  python examples/monitor_run.py
"""

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.chaos import ChaosSchedule
from repro.obs.dashboard import write_dashboard
from repro.obs.monitor import validate_monitor_summary
from repro.workloads import WordCountWorkload


def main():
    cluster = GFlinkCluster(ClusterConfig(
        n_workers=4, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",),
        flink=FlinkConfig(enable_monitoring=True, monitor_window_s=1.0,
                          retry_backoff_base_s=0.05)))
    monitor = cluster.obs.monitor
    # Gate the built-in availability SLO; job latency stays tracking-only.
    monitor.set_availability_target(0.995)

    schedule = ChaosSchedule()
    schedule.kill_worker("worker1", at=100.0)
    cluster.install_chaos(schedule)

    workload = WordCountWorkload(real_elements=4000)
    result = workload.run(GFlinkSession(cluster), "gpu")
    monitor.finalize()

    summary = monitor.summary()
    assert validate_monitor_summary(summary) == []

    health = summary["health"]
    print(f"wordcount under a worker kill: {result.total_seconds:.2f} s, "
          f"{summary['windows_closed']} monitor windows")
    print(f"cluster health {health['cluster']:.0f}/100 "
          f"({', '.join(f'{w}={v:.0f}' for w, v in sorted(health['workers'].items()))})")
    for slo in summary["slos"]:
        print(f"SLO {slo['name']}: {slo['events']} events, "
              f"{slo['bad']} bad, burn {slo['burn_rate']:.2f}x"
              + (" — VIOLATED" if slo["violated"] else ""))
    for alert in summary["alerts"]:
        resolved = (f"resolved @ {alert['resolved_at_s']:.0f} s"
                    if alert["resolved_at_s"] is not None else "unresolved")
        print(f"alert [{alert['severity']}] {alert['rule']} "
              f"on {alert['series']}: fired @ {alert['fired_at_s']:.0f} s, "
              f"{resolved}")

    path = "monitor-dashboard.html"
    write_dashboard(summary, path, title="GMonitor: wordcount worker-kill")
    print(f"dashboard: {path} (self-contained HTML — open in a browser)")


if __name__ == "__main__":
    main()
