"""Streaming on GFlink — the paper's §1.1 motivation, built out.

The paper chose Flink over Spark for "the needs of future expansion for a
better streaming processing implementation": Flink processes event-by-event
while Spark Streaming buffers mini-batches.  This example measures that
difference and runs a GPU-accelerated windowed aggregation (each closed
window becomes a GWork batch on the node's GPUs).

Run:  python examples/streaming_windows.py
"""

import numpy as np

from repro.core import GFlinkCluster
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec
from repro.streaming import ProcessingMode, StreamEnvironment, WindowSpec


def make_cluster():
    return GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=4),
        gpus_per_worker=("c2050",)))


def main():
    # 1. Event-level vs mini-batch latency for the same pipeline.
    print("sensor pipeline, 2000 events at 2 kHz, map+filter:")
    for label, mode, interval in (
            ("event-level (Flink)", ProcessingMode.EVENT_LEVEL, 1.0),
            ("mini-batch 0.5 s (Spark-style)", ProcessingMode.MINI_BATCH,
             0.5)):
        env = StreamEnvironment(make_cluster(), mode=mode,
                                batch_interval_s=interval)
        result = env.from_rate(rate=2000.0, n_events=2000) \
            .map(lambda v: v * 1.5, flops_per_element=20.0) \
            .filter(lambda v: v >= 0) \
            .execute()
        print(f"  {label:32s} mean latency "
              f"{result.mean_record_latency * 1e3:8.3f} ms   p99 "
              f"{result.p99_record_latency * 1e3:8.3f} ms")

    # 2. GPU-windowed aggregation: per-key sums over tumbling windows.
    cluster = make_cluster()
    cluster.registry.register(KernelSpec(
        "window_sum",
        lambda i, p: {"out": np.array([float(np.sum(i["in"]))])},
        flops_per_element=1.0, efficiency=0.4))
    env = StreamEnvironment(cluster)
    result = env.from_rate(rate=2000.0, n_events=2000,
                           value_fn=lambda i: float(i % 10)) \
        .key_by(lambda v: int(v) % 2) \
        .window(WindowSpec.tumbling(0.25)) \
        .gpu_aggregate("window_sum")
    print(f"\nGPU-windowed aggregation: {len(result.results)} windows "
          f"closed, GPU kernel time "
          f"{cluster.total_kernel_seconds() * 1e3:.2f} ms,")
    print(f"mean window latency "
          f"{np.mean(result.window_latencies) * 1e3:.3f} ms — the same "
          f"GWork path as batch jobs.")


if __name__ == "__main__":
    main()
