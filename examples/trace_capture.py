"""Capture a Chrome trace + metrics snapshot from one traced run.

Runs WordCount on a tracing-enabled cluster and writes two artifacts: a
Chrome trace-event JSON (drag into https://ui.perfetto.dev — one track per
worker slot, GPU engine and copy engine, so the H2D/kernel/D2H pipeline
overlap of §5 is visible as staggered spans) and a flat metrics JSON.

Run:  python examples/trace_capture.py
"""

import tempfile
from pathlib import Path

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.obs.export import (
    collect_cluster,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_metrics,
)
from repro.workloads import WordCountWorkload


def main():
    config = ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=2),
        gpus_per_worker=("c2050", "c2050"),
        flink=FlinkConfig(enable_tracing=True))  # off by default
    cluster = GFlinkCluster(config)
    workload = WordCountWorkload(nominal_elements=2e8, real_elements=4000)
    result = workload.run(GFlinkSession(cluster), "gpu")

    # Snapshot-time collection folds the runtime's plain counters (device
    # totals, cache stats, HDFS bytes) into the registry as gauges.
    collect_cluster(cluster.obs.registry, cluster)

    out_dir = Path(tempfile.mkdtemp(prefix="gflink-trace-"))
    trace_path = write_chrome_trace(cluster.obs.tracer,
                                    out_dir / "wordcount.trace.json")
    metrics_path = write_metrics(cluster.obs.registry,
                                 out_dir / "wordcount.metrics.json")
    assert validate_chrome_trace_file(trace_path) == []

    tracer = cluster.obs.tracer
    tracks = tracer.track_names()
    kernels = [e for e in tracer.spans(cat="gpu.device")
               if e.name not in ("h2d", "d2h")]
    copies = [e for e in tracer.spans(cat="gpu.device")
              if e.name in ("h2d", "d2h")]
    overlaps = sum(1 for c in copies for k in kernels
                   if c.pid == k.pid and c.overlaps(k))

    print(f"traced WordCount (GPU): {result.total_seconds:.2f} simulated s")
    print(f"  {len(tracer)} events across {len(tracks)} processes, "
          f"{sum(len(t) for t in tracks.values())} lanes")
    print(f"  {len(kernels)} kernel spans, {len(copies)} copy spans, "
          f"{overlaps} copy/kernel overlaps (the §5 pipeline at work)")
    print(f"  trace:   {trace_path}  (open in https://ui.perfetto.dev)")
    print(f"  metrics: {metrics_path}")


if __name__ == "__main__":
    main()
